#include "src/stats/sampler.h"

#include "src/util/check.h"

namespace specbench {

SampleResult SampleUntilConverged(const std::function<double()>& measure,
                                  const SamplerOptions& options) {
  SPECBENCH_CHECK(options.min_samples >= 2);
  SPECBENCH_CHECK(options.max_samples >= options.min_samples);

  RunningStats stats;
  SampleResult result;
  while (stats.count() < options.max_samples) {
    stats.Add(measure());
    if (stats.count() >= options.min_samples &&
        stats.relative_ci95() <= options.target_relative_ci) {
      result.converged = true;
      break;
    }
  }
  result.estimate = Estimate{stats.mean(), stats.ci95_half_width()};
  result.samples = stats.count();
  return result;
}

}  // namespace specbench
