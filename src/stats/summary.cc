#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace specbench {

void RunningStats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  count_++;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  // Welford's update can leave m2_ a tiny negative value through catastrophic
  // cancellation when samples are nearly identical relative to their
  // magnitude. A negative m2_ makes stddev()/sem() NaN, and every NaN
  // comparison in the convergence check is silently false.
  if (m2_ < 0.0) {
    m2_ = 0.0;
  }
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ < 2) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci95_half_width() const {
  if (count_ < 2) {
    return 0.0;
  }
  return TCritical95(count_ - 1) * sem();
}

double RunningStats::relative_ci95() const {
  if (count_ < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const double m = std::fabs(mean_);
  if (m == 0.0) {
    return ci95_half_width() == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return ci95_half_width() / m;
}

double TCritical95(size_t dof) {
  // Two-sided 0.975 quantiles of Student's t distribution, exact through
  // dof 60. Beyond the table each bucket returns its *lowest*-dof quantile,
  // so the bucketed value is always >= the true quantile: a too-wide CI only
  // costs extra samples, while a too-narrow one (the old table returned
  // 2.009 for every dof in [31, 59], below t(31) = 2.040) stops the
  // adaptive sampler before the error target is actually met.
  static const double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,  // dof 0-9
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,  // 10-19
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,  // 20-29
      2.042,  2.040,  2.037, 2.035, 2.032, 2.030, 2.028, 2.026, 2.024, 2.023,  // 30-39
      2.021,  2.020,  2.018, 2.017, 2.015, 2.014, 2.013, 2.012, 2.011, 2.010,  // 40-49
      2.009,  2.008,  2.007, 2.006, 2.005, 2.004, 2.003, 2.002, 2.002, 2.001,  // 50-59
      2.000,
  };
  if (dof == 0) {
    return 0.0;
  }
  if (dof < sizeof(kTable) / sizeof(kTable[0])) {
    return kTable[dof];
  }
  if (dof < 120) {
    return 2.000;  // t(60), an upper bound on t(dof) for dof in (60, 120)
  }
  if (dof < 1000) {
    return 1.980;  // t(120)
  }
  return 1.962;  // t(1000); within 0.1% of the 1.960 asymptote, never below it
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    SPECBENCH_CHECK_MSG(v > 0.0, "GeometricMean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double q) {
  SPECBENCH_CHECK(!values.empty());
  SPECBENCH_CHECK(q >= 0.0 && q <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Estimate RelativeOverheadPercent(const Estimate& slow, const Estimate& fast) {
  SPECBENCH_CHECK(fast.value > 0.0);
  const double ratio = slow.value / fast.value;
  // First-order error propagation for a quotient.
  const double rel_err_slow = slow.value != 0.0 ? slow.ci95 / slow.value : 0.0;
  const double rel_err_fast = fast.ci95 / fast.value;
  const double ratio_err = ratio * std::sqrt(rel_err_slow * rel_err_slow +
                                             rel_err_fast * rel_err_fast);
  return Estimate{(ratio - 1.0) * 100.0, ratio_err * 100.0};
}

Estimate Difference(const Estimate& a, const Estimate& b) {
  return Estimate{a.value - b.value, std::sqrt(a.ci95 * a.ci95 + b.ci95 * b.ci95)};
}

}  // namespace specbench
