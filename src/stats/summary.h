// Statistical summaries used by the measurement methodology (paper §4.1).
//
// The paper: "We adopted a methodology of running each benchmark
// configuration many times while tracking the average and 95%-confidence
// interval, stopping once the error was small enough." RunningStats tracks
// mean/variance incrementally (Welford) and exposes a Student-t 95% CI.
#ifndef SPECTREBENCH_SRC_STATS_SUMMARY_H_
#define SPECTREBENCH_SRC_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace specbench {

// Incremental mean / variance / confidence-interval tracker.
class RunningStats {
 public:
  void Add(double sample);

  size_t count() const { return count_; }
  double mean() const;
  // Unbiased sample variance; zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  // Standard error of the mean.
  double sem() const;
  // Half-width of the 95% confidence interval around the mean (Student-t).
  // Zero for fewer than two samples.
  double ci95_half_width() const;
  // Relative CI half width: ci95_half_width / |mean|; infinity if mean is 0
  // and fewer than 2 samples were seen.
  double relative_ci95() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Two-sided 95% Student-t critical value for `dof` degrees of freedom.
// Exact table through dof 60, then conservative buckets (each bucket returns
// the quantile of its lowest dof, so the result is never below the true
// critical value and CIs never come out anti-conservatively narrow).
double TCritical95(size_t dof);

// Geometric mean of strictly positive values; returns 0 for empty input.
// LEBench scores are aggregated this way, as in the paper (§4.2).
double GeometricMean(const std::vector<double>& values);

// q-th percentile (0 <= q <= 100) by linear interpolation between order
// statistics; used for the bimodal latency analysis (§6.2.2), where means
// hide the second mode. Aborts on empty input.
double Percentile(std::vector<double> values, double q);

// Median shorthand.
inline double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

// A measured quantity with its 95% CI half-width.
struct Estimate {
  double value = 0.0;
  double ci95 = 0.0;
};

// Relative overhead in percent of `slow` with respect to `fast`, with a
// first-order error propagation of the two CIs:
//   overhead% = (slow/fast - 1) * 100.
Estimate RelativeOverheadPercent(const Estimate& slow, const Estimate& fast);

// Difference (a - b) with combined CI.
Estimate Difference(const Estimate& a, const Estimate& b);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_STATS_SUMMARY_H_
