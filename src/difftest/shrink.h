// Greedy minimizer for diverging difftest programs.
//
// Given a program on which the machine and the reference interpreter
// disagree, produce the smallest reproducer we can find with two greedy
// passes repeated to a fixed point:
//   1. truncation — cut the program after the shortest prefix (plus a
//      terminating kHalt) that still diverges, and
//   2. nop-out — replace each remaining instruction with kNop when the
//      divergence survives without it.
// Replacing rather than deleting keeps every branch-target index valid, so
// candidates stay well-formed; `still_fails` is expected to validate each
// candidate with the reference interpreter before touching the machine
// (RunReference rejects programs that would trip a SPECBENCH_CHECK abort).
#ifndef SPECTREBENCH_SRC_DIFFTEST_SHRINK_H_
#define SPECTREBENCH_SRC_DIFFTEST_SHRINK_H_

#include <functional>

#include "src/isa/program.h"

namespace specbench {

// True when `program` still reproduces the divergence being minimized. Must
// return false (not crash) on invalid candidates.
using ShrinkPredicate = std::function<bool(const Program&)>;

// Shrinks `program` under `still_fails`. The input must itself satisfy the
// predicate; the result always does. Deterministic: no randomness involved.
Program ShrinkProgram(const Program& program, const ShrinkPredicate& still_fails);

// Size metric for shrunk programs: instructions that are not kNop. (The
// nop-out pass leaves kNop placeholders behind to preserve branch targets.)
int CountNonNop(const Program& program);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_DIFFTEST_SHRINK_H_
