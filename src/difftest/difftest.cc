#include "src/difftest/difftest.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/difftest/shrink.h"
#include "src/os/mitigation_config.h"
#include "src/runner/thread_pool.h"
#include "src/uarch/machine.h"
#include "src/uarch/machine_pool.h"
#include "src/util/check.h"

namespace specbench {

namespace {

// Quotes an argument for the repro command line when it contains spaces
// (CPU names like "Skylake Client").
std::string ShellArg(const std::string& arg) {
  if (arg.find(' ') == std::string::npos) {
    return arg;
  }
  std::string quoted = "'";
  quoted += arg;
  quoted += '\'';
  return quoted;
}

std::string ReproCommandLine(uint64_t seed, const std::string& cpu, const std::string& config,
                             uint64_t inject_alu_fault_after, bool fast = false) {
  std::ostringstream out;
  out << "spectrebench difftest --seeds=" << seed << ":" << seed + 1;
  if (!cpu.empty() && cpu != "-") {
    std::string flag = "--cpus=";
    flag += cpu;
    out << " " << ShellArg(flag);
  }
  if (!config.empty() && config != "-") {
    std::string flag = "--configs=";
    flag += config;
    out << " " << ShellArg(flag);
  }
  if (inject_alu_fault_after != 0) {
    out << " --inject-alu-fault=" << inject_alu_fault_after;
  }
  if (fast) {
    out << " --fast";
  }
  return out.str();
}

void ApplyDiffConfig(Machine* m, const DiffConfig& config) {
  if (config.from_cpu_defaults) {
    const MitigationConfig defaults = MitigationConfig::Defaults(m->cpu());
    m->SetSsbd(defaults.ssbd == SsbdMode::kAlways);
    m->SetIbrs(defaults.ibrs != IbrsMode::kOff);
    m->SetPcidEnabled(defaults.pcid);
    return;
  }
  m->SetSsbd(config.ssbd);
  m->SetIbrs(config.ibrs);
  m->SetStibp(config.stibp);
  m->SetPcidEnabled(config.pcid);
}

// Per-seed result slot: written by exactly one task, merged in seed order.
struct SeedResult {
  uint64_t executions = 0;
  uint64_t retired = 0;
  std::vector<Divergence> divergences;
};

}  // namespace

std::vector<DiffConfig> DefaultDiffConfigs() {
  std::vector<DiffConfig> configs;
  configs.push_back({.name = "off"});
  configs.push_back({.name = "defaults", .from_cpu_defaults = true});
  configs.push_back({.name = "ssbd", .ssbd = true});
  configs.push_back({.name = "ibrs", .ibrs = true});
  configs.push_back({.name = "nopcid", .pcid = false});
  configs.push_back({.name = "stibp", .stibp = true});
  return configs;
}

bool TryGetDiffConfigByName(const std::string& name, DiffConfig* out) {
  for (const DiffConfig& config : DefaultDiffConfigs()) {
    if (config.name == name) {
      *out = config;
      return true;
    }
  }
  return false;
}

namespace {

// Shared tail of both RunMachineArch variants: set up the program, the
// config and the trace hook, run via `run`, drain, and collect the canonical
// architectural end state.
template <typename RunFn>
ArchState RunArchOn(Machine& m, const Program& program, const DiffConfig& config,
                    uint64_t inject_alu_fault_after, RunFn run) {
  m.LoadProgram(&program);
  ApplyDiffConfig(&m, config);
  if (inject_alu_fault_after != 0) {
    m.InjectAluFaultForTesting(inject_alu_fault_after);
  }

  ArchState state;
  state.trace_hash = kArchHashBasis;
  m.SetTraceHook([&state](const Machine::TraceRecord& record) {
    state.retired++;
    state.trace_hash = FoldTraceHash(state.trace_hash, record.index, record.op);
  });

  const Machine::RunResult result = run(m);
  m.DrainPipeline();
  m.DrainStoreBuffer();

  for (uint8_t r = 0; r < kNumRegs; r++) {
    state.regs[r] = m.reg(r);
  }
  for (uint8_t r = 0; r < kNumFpRegs; r++) {
    state.fpregs[r] = m.fpreg(r);
  }
  state.halted = result.halted;
  state.memory_digest = DigestMemoryWords(m.physical_memory().SortedNonZeroWords());
  // The hook captures stack state; detach it before the machine outlives the
  // frame (pooled machines are reused, and Reset would clear it anyway).
  m.SetTraceHook(nullptr);
  return state;
}

}  // namespace

ArchState RunMachineArch(const Program& program, const CpuModel& cpu, const DiffConfig& config,
                         uint64_t max_instructions, uint64_t inject_alu_fault_after) {
  Machine m(cpu);
  // RunPartial: exhausting the budget is a reportable outcome (halted=false
  // diverges from the reference), not a SPECBENCH_CHECK abort like Run.
  return RunArchOn(m, program, config, inject_alu_fault_after, [&](Machine& machine) {
    return machine.RunPartial(program.base_vaddr(), max_instructions);
  });
}

ArchState RunMachineArchFast(const Program& program, const CpuModel& cpu, const DiffConfig& config,
                             uint64_t max_instructions, uint64_t inject_alu_fault_after) {
  Machine& m = MachinePool::ThreadLocal().Acquire(cpu);
  return RunArchOn(m, program, config, inject_alu_fault_after, [&](Machine& machine) {
    return machine.RunSampled(program.base_vaddr(), max_instructions, Machine::FastForwardPlan{});
  });
}

DifftestReport RunDifftest(const DifftestOptions& options) {
  SPECBENCH_CHECK_MSG(options.seed_end >= options.seed_begin, "difftest: empty seed range");
  const std::vector<Uarch> cpus = options.cpus.empty() ? AllUarches() : options.cpus;
  const std::vector<DiffConfig> configs =
      options.configs.empty() ? DefaultDiffConfigs() : options.configs;
  const uint64_t count = options.seed_end - options.seed_begin;

  std::vector<SeedResult> slots(static_cast<size_t>(count));
  auto run_seed = [&](uint64_t seed, SeedResult* slot) {
    const Program program = GenerateProgram(seed, options.generator);
    const ReferenceResult ref = RunReference(program, options.max_instructions);
    if (!ref.ok) {
      Divergence d;
      d.seed = seed;
      d.cpu = '-';
      d.config = '-';
      d.detail = "reference: ";
      d.detail += ref.error;
      d.repro = ReproCommandLine(seed, "-", "-", options.inject_alu_fault_after);
      slot->divergences.push_back(std::move(d));
      return;
    }
    for (Uarch u : cpus) {
      const CpuModel& cpu = GetCpuModel(u);
      for (const DiffConfig& config : configs) {
        const ArchState got =
            options.fast ? RunMachineArchFast(program, cpu, config, options.max_instructions,
                                              options.inject_alu_fault_after)
                         : RunMachineArch(program, cpu, config, options.max_instructions,
                                          options.inject_alu_fault_after);
        slot->executions++;
        slot->retired += got.retired;
        if (options.fast && options.cross_validate) {
          // Prove the sampling contract on this exact cell: the detailed
          // engine must land on the same architectural end state.
          const ArchState detailed = RunMachineArch(program, cpu, config, options.max_instructions,
                                                    options.inject_alu_fault_after);
          slot->executions++;
          if (!(got == detailed)) {
            Divergence d;
            d.seed = seed;
            d.cpu = UarchName(u);
            d.config = config.name;
            d.detail = "fast-path: ";
            d.detail += DescribeArchDivergence(detailed, got);
            d.repro = ReproCommandLine(seed, d.cpu, d.config, options.inject_alu_fault_after,
                                       /*fast=*/true);
            d.repro += " --cross-validate";
            slot->divergences.push_back(std::move(d));
          }
        }
        if (got == ref.state) {
          continue;
        }
        Divergence d;
        d.seed = seed;
        d.cpu = UarchName(u);
        d.config = config.name;
        d.detail = DescribeArchDivergence(ref.state, got);
        d.repro =
            ReproCommandLine(seed, d.cpu, d.config, options.inject_alu_fault_after, options.fast);
        if (options.shrink) {
          auto still_fails = [&](const Program& candidate) {
            const ReferenceResult r = RunReference(candidate, options.max_instructions);
            if (!r.ok) {
              return false;  // invalid candidate: would abort the machine
            }
            const ArchState g =
                options.fast ? RunMachineArchFast(candidate, cpu, config, options.max_instructions,
                                                  options.inject_alu_fault_after)
                             : RunMachineArch(candidate, cpu, config, options.max_instructions,
                                              options.inject_alu_fault_after);
            return !(g == r.state);
          };
          d.shrunk = ShrinkProgram(program, still_fails);
          d.shrunk_size = CountNonNop(d.shrunk);
        }
        slot->divergences.push_back(std::move(d));
      }
    }
  };

  {
    ThreadPool pool(options.jobs < 0 ? 1 : static_cast<size_t>(options.jobs));
    for (uint64_t i = 0; i < count; i++) {
      const uint64_t seed = options.seed_begin + i;
      SeedResult* slot = &slots[static_cast<size_t>(i)];
      pool.Submit([&run_seed, seed, slot] { run_seed(seed, slot); });
    }
    pool.Wait();
  }

  DifftestReport report;
  report.programs = count;
  for (SeedResult& slot : slots) {
    report.executions += slot.executions;
    report.retired_instructions += slot.retired;
    for (Divergence& d : slot.divergences) {
      report.divergences.push_back(std::move(d));
    }
  }
  return report;
}

std::string DifftestReport::ToText() const {
  std::ostringstream out;
  out << "difftest: " << programs << " programs, " << executions << " machine runs, "
      << divergences.size() << " divergences\n";
  for (const Divergence& d : divergences) {
    out << "  seed=" << d.seed << " cpu=" << d.cpu << " config=" << d.config << ": " << d.detail
        << "\n";
    if (d.shrunk.size() > 0) {
      out << "    shrunk to " << d.shrunk_size << " instructions\n";
    }
    out << "    repro: " << d.repro << "\n";
  }
  return out.str();
}

}  // namespace specbench
