#include "src/difftest/equivalence.h"

#include <map>
#include <sstream>

#include "src/difftest/reference.h"
#include "src/util/check.h"

namespace specbench {

EquivalenceReport CheckRewriteEquivalence(const Program& original, const Program& hardened,
                                          const std::vector<int32_t>& index_map,
                                          const EquivalenceOptions& options) {
  SPECBENCH_CHECK_MSG(static_cast<int32_t>(index_map.size()) == original.size() + 1,
                      "index_map must cover every original index plus one-past-the-end");
  EquivalenceReport report;

  std::vector<std::pair<uint64_t, uint64_t>> memory_original;
  const ReferenceResult ref_original =
      RunReference(original, options.max_instructions, &memory_original);
  if (!ref_original.ok) {
    // Outside the deterministic user-mode subset (or non-terminating):
    // the reference cannot supply ground truth, so there is nothing to
    // check — the caller's replay-based validation still applies.
    report.divergence = "original program not checkable: " + ref_original.error;
    return report;
  }
  report.checked = true;

  std::vector<std::pair<uint64_t, uint64_t>> memory_hardened;
  const ReferenceResult ref_hardened =
      RunReference(hardened, options.max_instructions, &memory_hardened);
  if (!ref_hardened.ok) {
    report.divergence = "hardened program failed on the reference: " + ref_hardened.error;
    return report;
  }

  const ArchState& so = ref_original.state;
  const ArchState& sh = ref_hardened.state;

  // A value is equivalent when equal, or when the original value is the
  // address of original instruction t and the hardened value is t's
  // relocated address.
  auto values_equivalent = [&](uint64_t vo, uint64_t vh) {
    if (vo == vh) {
      return true;
    }
    const int32_t t = original.IndexOf(vo);
    if (t < 0) {
      return false;
    }
    return vh == hardened.VaddrOf(index_map[static_cast<size_t>(t)]);
  };
  auto fail = [&](const std::string& what, uint64_t vo, uint64_t vh) {
    std::ostringstream out;
    out << what << ": original 0x" << std::hex << vo << ", hardened 0x" << vh;
    report.divergence = out.str();
    return report;
  };

  for (uint8_t r = 0; r < kNumRegs; r++) {
    if (!values_equivalent(so.regs[r], sh.regs[r])) {
      return fail("reg[" + std::to_string(r) + "]", so.regs[r], sh.regs[r]);
    }
  }
  for (uint8_t r = 0; r < kNumFpRegs; r++) {
    if (so.fpregs[r] != sh.fpregs[r]) {
      return fail("fpreg[" + std::to_string(r) + "]", so.fpregs[r], sh.fpregs[r]);
    }
  }
  if (so.halted != sh.halted) {
    return fail("halted", so.halted, sh.halted);
  }

  // Memory, word by word (the digests cannot match: relocated code
  // addresses stored to memory legitimately differ).
  const bool ignore_dead_stack = options.stack_window_bytes > 0 &&
                                 so.regs[kRegSp] == options.stack_top &&
                                 sh.regs[kRegSp] == options.stack_top;
  auto in_dead_stack = [&](uint64_t addr) {
    return ignore_dead_stack && addr < options.stack_top &&
           addr >= options.stack_top - options.stack_window_bytes;
  };
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> words;  // addr -> (orig, hardened)
  for (const auto& [addr, value] : memory_original) {
    words[addr].first = value;
  }
  for (const auto& [addr, value] : memory_hardened) {
    words[addr].second = value;
  }
  for (const auto& [addr, pair] : words) {
    if (in_dead_stack(addr)) {
      continue;
    }
    if (!values_equivalent(pair.first, pair.second)) {
      std::ostringstream what;
      what << "memory word at 0x" << std::hex << addr;
      return fail(what.str(), pair.first, pair.second);
    }
  }

  // Machine-side oracle: the hardened program must also be simulated
  // faithfully (exact ArchState agreement with its own reference run).
  const std::vector<DiffConfig> configs =
      options.configs.empty() ? DefaultDiffConfigs() : options.configs;
  for (Uarch uarch : options.cpus) {
    const CpuModel& cpu = GetCpuModel(uarch);
    for (const DiffConfig& config : configs) {
      const ArchState machine =
          RunMachineArch(hardened, cpu, config, options.max_instructions);
      if (!(machine == sh)) {
        report.divergence = std::string("hardened program diverges on ") + UarchName(uarch) +
                            "/" + config.name + ": " + DescribeArchDivergence(sh, machine);
        return report;
      }
    }
  }

  report.equivalent = true;
  return report;
}

}  // namespace specbench
