#include "src/difftest/generator.h"

#include <iterator>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace specbench {

namespace {

// The generator's working state: the builder, the RNG, and the bound
// function entry points indirect calls may target.
struct Gen {
  ProgramBuilder b;
  Rng rng;
  std::vector<Label> func_labels;
  std::vector<int32_t> func_indices;

  explicit Gen(uint64_t seed) : rng(seed) {}

  uint8_t Scratch() { return static_cast<uint8_t>(rng.NextBelow(kGenScratchRegs)); }

  // Exactly one register-only instruction (no memory, no control flow).
  // Several call sites rely on the one-instruction guarantee to compute
  // indirect-branch landing indices.
  void EmitPlainOp() {
    const uint8_t dst = Scratch();
    const uint8_t a = Scratch();
    const uint8_t c = Scratch();
    static constexpr AluOp kAluOps[] = {AluOp::kAdd, AluOp::kSub, AluOp::kAnd, AluOp::kOr,
                                        AluOp::kXor, AluOp::kShl, AluOp::kShr, AluOp::kCmpLt,
                                        AluOp::kCmpGe, AluOp::kCmpEq, AluOp::kCmpNe};
    switch (rng.NextBelow(8)) {
      case 0:
        b.MovImm(dst, static_cast<int64_t>(rng.NextU64()));
        break;
      case 1:
        b.Mov(dst, a);
        break;
      case 2:
        b.Alu(kAluOps[rng.NextBelow(std::size(kAluOps))], dst, a, c);
        break;
      case 3:
        b.AluImm(kAluOps[rng.NextBelow(std::size(kAluOps))], dst, a,
                 static_cast<int64_t>(rng.NextBelow(1 << 12)));
        break;
      case 4:
        b.Mul(dst, a, c);
        break;
      case 5:
        // Divide by a register that may well be zero: the machine defines
        // x/0 = 0 and the divider keeps the paper's §6.1 probe observable.
        b.Div(dst, a, c);
        break;
      case 6:
        b.Cmov(dst, a, c);
        break;
      default:
        b.Lea(dst, MemRef{a, c, 1, static_cast<int64_t>(rng.NextBelow(256))});
        break;
    }
  }

  // Masks `src` into a word-aligned in-window index register and returns it.
  uint8_t MaskedIndex(uint64_t mask) {
    const uint8_t idx = Scratch();
    b.AluImm(AluOp::kAnd, idx, Scratch(), static_cast<int64_t>(mask));
    return idx;
  }

  void EmitLoad(uint8_t base_reg, uint64_t mask) {
    const uint8_t idx = MaskedIndex(mask);
    b.Load(Scratch(), MemRef{base_reg, idx, 1, 0});
  }

  void EmitStore(uint8_t base_reg, uint64_t mask) {
    const uint8_t idx = MaskedIndex(mask);
    b.Store(MemRef{base_reg, idx, 1, 0}, Scratch());
  }

  // The Spectre V1 masking shape: bounds check, cmov to the safe index,
  // dependent load. The branchless guard is what index-masking mitigations
  // and the §7 cmov-load-fusion hardware act on.
  void EmitBoundsCheckedLoad() {
    const uint8_t idx = MaskedIndex(kGenDataMask);
    const uint8_t guard = Scratch();
    const uint8_t safe = Scratch();
    b.AluImm(AluOp::kCmpGe, guard, idx, static_cast<int64_t>(rng.NextInRange(8, kGenDataMask)));
    b.MovImm(safe, 0);
    b.Cmov(idx, safe, guard);  // out of bounds -> index 0
    b.Load(Scratch(), MemRef{kGenDataBaseReg, idx, 1, 0});
  }

  // Store/load pair through the tiny alias window: with only 8 words the
  // pair aliases often, exercising forwarding, speculative store bypass and
  // the SSBD wait-for-address discipline.
  void EmitAliasPair() {
    EmitStore(kGenAliasBaseReg, kGenAliasMask);
    for (uint64_t i = rng.NextBelow(3); i > 0; i--) {
      EmitPlainOp();
    }
    EmitLoad(kGenAliasBaseReg, kGenAliasMask);
  }

  void EmitFence() {
    switch (rng.NextBelow(7)) {
      case 0: b.Lfence(); break;
      case 1: b.Mfence(); break;
      case 2: b.Cpuid(); break;
      case 3: b.Pause(); break;
      case 4: b.RsbStuff(); break;
      case 5: b.Verw(); break;
      default: {
        const uint8_t idx = MaskedIndex(kGenDataMask);
        b.Clflush(MemRef{kGenDataBaseReg, idx, 1, 0});
        break;
      }
    }
  }

  void EmitFpGadget() {
    const uint8_t fp = static_cast<uint8_t>(rng.NextBelow(kNumFpRegs));
    switch (rng.NextBelow(3)) {
      case 0: b.GpToFp(fp, Scratch()); break;
      case 1: b.FpOp(fp); break;
      default: b.FpToGp(Scratch(), fp); break;
    }
  }

  // Forward conditional branch over a short gap: the not-taken/taken paths
  // are both architecturally well-formed, and mispredictions speculate into
  // the gap.
  void EmitForwardBranch() {
    Label skip = b.NewLabel();
    if (rng.NextBelow(2) == 0) {
      b.BranchNz(Scratch(), skip);
    } else {
      b.BranchZ(Scratch(), skip);
    }
    for (uint64_t i = 1 + rng.NextBelow(3); i > 0; i--) {
      EmitPlainOp();
    }
    b.Bind(skip);
  }

  // Indirect jump to a literal forward address with a wrong-path gap the
  // machine can only reach speculatively (stale BTB entries land in it).
  void EmitIndirectSkip() {
    const int gap = 1 + static_cast<int>(rng.NextBelow(3));
    const int32_t target_index = b.NextIndex() + 2 + gap;
    b.MovImm(kGenSpareReg,
             static_cast<int64_t>(kDefaultCodeBase + kInstructionBytes * target_index));
    b.IndirectJmp(kGenSpareReg);
    for (int i = 0; i < gap; i++) {
      EmitPlainOp();  // speculative wrong path only
    }
    SPECBENCH_CHECK(b.NextIndex() == target_index);
  }

  void EmitCall() {
    if (func_labels.empty()) {
      EmitPlainOp();
      return;
    }
    const size_t f = rng.NextBelow(func_labels.size());
    if (rng.NextBelow(2) == 0) {
      b.Call(func_labels[f]);
    } else {
      b.MovImm(kGenSpareReg,
               static_cast<int64_t>(kDefaultCodeBase + kInstructionBytes * func_indices[f]));
      b.IndirectCall(kGenSpareReg);
    }
  }

  // One random segment of the main body. `loop_depth` caps loop nesting at
  // the two reserved counter registers.
  void EmitSegment(int loop_depth) {
    switch (rng.NextBelow(12)) {
      case 0:
      case 1:
        EmitPlainOp();
        break;
      case 2:
        EmitLoad(kGenDataBaseReg, kGenDataMask);
        break;
      case 3:
        EmitStore(kGenDataBaseReg, kGenDataMask);
        break;
      case 4:
        EmitBoundsCheckedLoad();
        break;
      case 5:
        EmitAliasPair();
        break;
      case 6:
        EmitForwardBranch();
        break;
      case 7:
        EmitIndirectSkip();
        break;
      case 8:
        EmitCall();
        break;
      case 9:
        EmitFence();
        break;
      case 10:
        EmitFpGadget();
        break;
      default:
        if (loop_depth < 2) {
          EmitLoop(loop_depth);
        } else {
          EmitPlainOp();
        }
        break;
    }
  }

  void EmitLoop(int loop_depth) {
    const uint8_t ctr = loop_depth == 0 ? kGenLoopReg0 : kGenLoopReg1;
    b.MovImm(ctr, static_cast<int64_t>(rng.NextInRange(1, 3)));
    Label top = b.NewLabel();
    b.Bind(top);
    for (uint64_t i = 1 + rng.NextBelow(3); i > 0; i--) {
      EmitSegment(loop_depth + 1);
    }
    b.AluImm(AluOp::kSub, ctr, ctr, 1);
    b.BranchNz(ctr, top);
  }
};

}  // namespace

Program GenerateProgram(uint64_t seed, const GeneratorOptions& options) {
  Gen g(seed);
  Label main = g.b.NewLabel();

  // Preamble: structural registers, seeded scratch state, an architecturally
  // initialized slice of the data window (both engines execute these stores,
  // so the windows agree by construction).
  g.b.MovImm(kGenDataBaseReg, static_cast<int64_t>(kGenDataBase));
  g.b.MovImm(kGenAliasBaseReg, static_cast<int64_t>(kGenAliasBase));
  g.b.MovImm(kRegSp, static_cast<int64_t>(kGenStackTop));
  for (uint8_t r = 0; r < kGenScratchRegs; r++) {
    g.b.MovImm(r, static_cast<int64_t>(g.rng.NextU64()));
  }
  for (int k = 0; k < options.init_words; k++) {
    g.b.MovImm(kGenSpareReg, static_cast<int64_t>(g.rng.NextU64()));
    g.b.Store(MemRef{kGenDataBaseReg, kNoReg, 1, 8 * k}, kGenSpareReg);
  }
  g.b.Jmp(main);

  // Leaf functions: straight-line bodies, no calls and no loops, so the call
  // graph is trivially acyclic and stack depth is bounded by one frame.
  for (int f = 0; f < options.functions; f++) {
    Label entry = g.b.NewLabel();
    g.b.Bind(entry);
    g.func_labels.push_back(entry);
    g.func_indices.push_back(g.b.NextIndex());
    for (uint64_t i = 3 + g.rng.NextBelow(5); i > 0; i--) {
      switch (g.rng.NextBelow(4)) {
        case 0: g.EmitLoad(kGenDataBaseReg, kGenDataMask); break;
        case 1: g.EmitStore(kGenAliasBaseReg, kGenAliasMask); break;
        default: g.EmitPlainOp(); break;
      }
    }
    g.b.Ret();
  }

  g.b.Bind(main);
  for (int i = 0; i < options.body_length; i++) {
    g.EmitSegment(/*loop_depth=*/0);
  }
  g.b.Halt();
  return g.b.Build();
}

}  // namespace specbench
