// Deterministic random-program generator for the differential oracle.
//
// Emits well-formed, always-terminating isa::Programs from a single seed
// (SplitMix64/Xoshiro expansion via util::Rng), biased toward the hazard
// shapes the paper's mitigations interact with:
//   * bounds-checked loads (the Spectre V1 masking pattern: compare, cmov to
//     a safe index, then the dependent load),
//   * indirect jumps/calls with a speculatively-executed wrong-path gap
//     (BTB/retpoline territory),
//   * store/load aliasing through a deliberately tiny memory window (the
//     speculative-store-bypass surface SSBD serializes),
//   * direct call/ret pairs (RSB behaviour), and
//   * serializing fences (lfence/mfence/cpuid) sprinkled through the mix.
//
// Structural invariants that make every emitted program safe to run on both
// engines under any CPU model × mitigation config:
//   * loads/stores only touch the data window, the alias window, or the
//     stack — index registers are masked immediately before every access;
//   * backward branches only appear as counted loops on reserved counter
//     registers, so execution always reaches kHalt;
//   * indirect branch targets are exact instruction addresses inside the
//     program; calls are made only to generated leaf functions ending in ret;
//   * no timing reads (rdtsc/rdpmc), no privileged ops (wrmsr, cr3,
//     syscall), so the architectural result is identical across CPU models
//     and mitigation configurations by construction.
#ifndef SPECTREBENCH_SRC_DIFFTEST_GENERATOR_H_
#define SPECTREBENCH_SRC_DIFFTEST_GENERATOR_H_

#include <cstdint>

#include "src/isa/program.h"

namespace specbench {

// Register conventions of generated programs. Scratch registers are the only
// destinations random instructions may write; everything above is reserved
// for the generator's own structure.
inline constexpr uint8_t kGenScratchRegs = 10;  // r0..r9 free
inline constexpr uint8_t kGenLoopReg0 = 10;     // loop counters (nesting <= 2)
inline constexpr uint8_t kGenLoopReg1 = 11;
inline constexpr uint8_t kGenDataBaseReg = 12;  // data window base
inline constexpr uint8_t kGenAliasBaseReg = 13; // alias window base
inline constexpr uint8_t kGenSpareReg = 14;     // generator-internal temp
// kRegSp (r15) is the stack pointer.

// Memory layout (identity-mapped; disjoint from the code at 0x400000).
inline constexpr uint64_t kGenDataBase = 0x10000;   // 4 KiB window
inline constexpr uint64_t kGenDataMask = 0xff8;     // word-aligned index mask
inline constexpr uint64_t kGenAliasBase = 0x20000;  // 64 B window
inline constexpr uint64_t kGenAliasMask = 0x38;     // 8 words: aliasing is common
inline constexpr uint64_t kGenStackTop = 0x80000;

struct GeneratorOptions {
  // Random instructions in the main body (gadgets count as several).
  int body_length = 48;
  // Leaf functions available as direct/indirect call targets.
  int functions = 2;
  // Words of the data window architecturally initialized in the preamble.
  int init_words = 8;
};

// Generates the program for `seed`. Deterministic: same seed and options,
// same program, on every platform.
Program GenerateProgram(uint64_t seed, const GeneratorOptions& options = GeneratorOptions());

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_DIFFTEST_GENERATOR_H_
