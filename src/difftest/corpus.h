// Textual corpus format for difftest reproducer programs.
//
// Shrunk diverging programs are committed under tests/corpus/ and replayed as
// regression tests, so the format is line-oriented, diff-friendly, and
// self-describing:
//
//   # spectrebench difftest corpus v1
//   # seed=17 cpu=skylake config=ssbd
//   base 0x400000
//   i op=mov_imm dst=12 imm=65536
//   i op=alu alu=add dst=0 src1=1 src2=2
//   i op=load dst=3 mem=12,0,1,8
//   i op=branch_nz src1=0 target=5
//   i op=halt
//
// Every instruction line serializes only the fields that differ from a
// default-constructed Instruction; `mem` is base,index,scale,disp with 255
// (kNoReg) for absent registers. Opcode and ALU names round-trip through
// OpName/ParseOpName, so renaming an opcode breaks parsing loudly instead of
// silently reinterpreting old corpora.
#ifndef SPECTREBENCH_SRC_DIFFTEST_CORPUS_H_
#define SPECTREBENCH_SRC_DIFFTEST_CORPUS_H_

#include <string>

#include "src/isa/program.h"

namespace specbench {

// Serializes `program` to corpus text. `comment` lines (may be multi-line)
// are emitted as leading `# ` comments after the version banner.
std::string SerializeCorpusProgram(const Program& program, const std::string& comment);

// Parses corpus text produced by SerializeCorpusProgram. Returns false and
// fills `error` (line number + reason) on malformed input.
bool ParseCorpusProgram(const std::string& text, Program* out, std::string* error);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_DIFFTEST_CORPUS_H_
