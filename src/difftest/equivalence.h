// Architectural-equivalence oracle for mitigation rewrites.
//
// A mitigation pass (src/analysis/passes.h) inserts or replaces
// instructions, which shifts every later instruction's virtual address. The
// rewrite engine remaps branch targets, symbols and code-address immediates,
// so a correct rewrite changes architectural state in exactly one describable
// way: any register or memory word that held the address of original
// instruction `t` now holds the hardened program's address of `t` (via
// RewriteResult::index_map). CheckRewriteEquivalence proves a rewrite correct
// by running both programs on the reference interpreter and comparing final
// states modulo that relocation, plus a dead-stack carve-out:
//
//   * Balanced call/ret sequences leave popped return addresses below the
//     final stack pointer. Those words are architecturally dead (nothing can
//     read them without another pop), but a rewrite that re-routes a call
//     through a stub (switchpoline) legitimately leaves a *different* dead
//     value behind. When both runs end with the stack pointer back at
//     `stack_top`, words in the window below it are excluded.
//
// Optionally the hardened program is also run on uarch::Machine across a
// CPU x config panel and required to match its own reference state exactly —
// proving the rewritten opcode mix (e.g. kBranchEqImm chains) is simulated
// faithfully under speculation, not just interpreted correctly.
#ifndef SPECTREBENCH_SRC_DIFFTEST_EQUIVALENCE_H_
#define SPECTREBENCH_SRC_DIFFTEST_EQUIVALENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/cpu_model.h"
#include "src/difftest/difftest.h"
#include "src/difftest/generator.h"
#include "src/isa/program.h"

namespace specbench {

struct EquivalenceOptions {
  uint64_t max_instructions = 1'000'000;
  // Dead-stack window: when BOTH runs end with regs[kRegSp] == stack_top,
  // words in [stack_top - stack_window_bytes, stack_top) are ignored.
  // 0 bytes disables the carve-out.
  uint64_t stack_top = kGenStackTop;
  uint64_t stack_window_bytes = 4096;
  // Machine-side oracle panel: run the hardened program on uarch::Machine
  // for each cpu x config and require exact agreement with its reference
  // state. Empty `cpus` skips the machine runs; empty `configs` means
  // DefaultDiffConfigs().
  std::vector<Uarch> cpus;
  std::vector<DiffConfig> configs;
};

struct EquivalenceReport {
  // False when the original program is outside the reference subset
  // (privileged opcodes): there is nothing to compare, not a failure.
  bool checked = false;
  bool equivalent = false;
  std::string divergence;  // first difference; empty when equivalent
};

EquivalenceReport CheckRewriteEquivalence(const Program& original, const Program& hardened,
                                          const std::vector<int32_t>& index_map,
                                          const EquivalenceOptions& options = {});

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_DIFFTEST_EQUIVALENCE_H_
