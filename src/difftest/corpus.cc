#include "src/difftest/corpus.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

namespace specbench {

namespace {

constexpr char kBanner[] = "# spectrebench difftest corpus v1";

void AppendField(std::string* line, const char* key, int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRId64, key, value);
  *line += buf;
}

std::string SerializeInstruction(const Instruction& in) {
  const Instruction defaults;
  std::string line = "i op=";
  line += OpName(in.op);
  if (in.op == Op::kAlu || in.alu != defaults.alu) {
    line += " alu=";
    line += AluOpName(in.alu);
  }
  if (in.dst != defaults.dst) AppendField(&line, "dst", in.dst);
  if (in.src1 != defaults.src1) AppendField(&line, "src1", in.src1);
  if (in.src2 != defaults.src2) AppendField(&line, "src2", in.src2);
  if (in.use_imm) AppendField(&line, "use_imm", 1);
  if (in.imm != defaults.imm) AppendField(&line, "imm", in.imm);
  const MemRef mem_defaults;
  if (in.mem.base != mem_defaults.base || in.mem.index != mem_defaults.index ||
      in.mem.scale != mem_defaults.scale || in.mem.disp != mem_defaults.disp) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " mem=%d,%d,%d,%" PRId64, in.mem.base, in.mem.index,
                  in.mem.scale, in.mem.disp);
    line += buf;
  }
  if (in.target != defaults.target) AppendField(&line, "target", in.target);
  return line;
}

bool ParseInt64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 0);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

bool ParseInstructionLine(const std::vector<std::string>& tokens, Instruction* out,
                          std::string* why) {
  Instruction in;
  bool saw_op = false;
  for (size_t t = 1; t < tokens.size(); t++) {
    const std::string& token = tokens[t];
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      *why = "expected key=value, got '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    int64_t number = 0;
    if (key == "op") {
      if (!ParseOpName(value.c_str(), &in.op)) {
        *why = "unknown opcode '" + value + "'";
        return false;
      }
      saw_op = true;
    } else if (key == "alu") {
      if (!ParseAluOpName(value.c_str(), &in.alu)) {
        *why = "unknown alu op '" + value + "'";
        return false;
      }
    } else if (key == "mem") {
      int base = 0, index = 0, scale = 0;
      long long disp = 0;
      if (std::sscanf(value.c_str(), "%d,%d,%d,%lld", &base, &index, &scale, &disp) != 4) {
        *why = "bad mem operand '" + value + "'";
        return false;
      }
      in.mem.base = static_cast<uint8_t>(base);
      in.mem.index = static_cast<uint8_t>(index);
      in.mem.scale = static_cast<uint8_t>(scale);
      in.mem.disp = disp;
    } else if (!ParseInt64(value, &number)) {
      *why = "bad integer for '" + key + "': '" + value + "'";
      return false;
    } else if (key == "dst") {
      in.dst = static_cast<uint8_t>(number);
    } else if (key == "src1") {
      in.src1 = static_cast<uint8_t>(number);
    } else if (key == "src2") {
      in.src2 = static_cast<uint8_t>(number);
    } else if (key == "use_imm") {
      in.use_imm = number != 0;
    } else if (key == "imm") {
      in.imm = number;
    } else if (key == "target") {
      in.target = static_cast<int32_t>(number);
    } else {
      *why = "unknown key '" + key + "'";
      return false;
    }
  }
  if (!saw_op) {
    *why = "instruction line without op=";
    return false;
  }
  *out = in;
  return true;
}

}  // namespace

std::string SerializeCorpusProgram(const Program& program, const std::string& comment) {
  std::ostringstream out;
  out << kBanner << "\n";
  std::istringstream comment_lines(comment);
  std::string line;
  while (std::getline(comment_lines, line)) {
    out << "# " << line << "\n";
  }
  char base[32];
  std::snprintf(base, sizeof(base), "base 0x%" PRIx64, program.base_vaddr());
  out << base << "\n";
  for (int32_t i = 0; i < program.size(); i++) {
    out << SerializeInstruction(program.at(i)) << "\n";
  }
  return out.str();
}

bool ParseCorpusProgram(const std::string& text, Program* out, std::string* error) {
  auto fail = [error](int line_number, const std::string& why) {
    if (error != nullptr) {
      std::ostringstream msg;
      msg << "line " << line_number << ": " << why;
      *error = msg.str();
    }
    return false;
  };

  std::istringstream in(text);
  std::string line;
  std::vector<Instruction> instructions;
  uint64_t base_vaddr = kDefaultCodeBase;
  int line_number = 0;
  while (std::getline(in, line)) {
    line_number++;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty() || tokens[0][0] == '#') {
      continue;
    }
    if (tokens[0] == "base") {
      if (tokens.size() != 2 || !ParseUint64(tokens[1], &base_vaddr)) {
        return fail(line_number, "bad base line");
      }
    } else if (tokens[0] == "i") {
      Instruction instr;
      std::string why;
      if (!ParseInstructionLine(tokens, &instr, &why)) {
        return fail(line_number, why);
      }
      instructions.push_back(instr);
    } else {
      return fail(line_number, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (instructions.empty()) {
    return fail(line_number, "no instructions");
  }
  *out = Program(std::move(instructions), base_vaddr, {});
  return true;
}

}  // namespace specbench
