#include "src/difftest/reference.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/uarch/memory.h"

namespace specbench {

namespace {

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr uint64_t kFnvBasis = kArchHashBasis;

uint64_t FnvByte(uint64_t hash, uint8_t byte) { return (hash ^ byte) * kFnvPrime; }

uint64_t FnvWord(uint64_t hash, uint64_t word) {
  for (int i = 0; i < 8; i++) {
    hash = FnvByte(hash, static_cast<uint8_t>(word >> (8 * i)));
  }
  return hash;
}

// Mirrors Machine::AluCompute exactly (shifts >= 64 are zero, unsigned
// compares).
uint64_t AluCompute(AluOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case AluOp::kAdd: return a + b;
    case AluOp::kSub: return a - b;
    case AluOp::kAnd: return a & b;
    case AluOp::kOr: return a | b;
    case AluOp::kXor: return a ^ b;
    case AluOp::kShl: return b >= 64 ? 0 : a << b;
    case AluOp::kShr: return b >= 64 ? 0 : a >> b;
    case AluOp::kCmpLt: return a < b ? 1 : 0;
    case AluOp::kCmpGe: return a >= b ? 1 : 0;
    case AluOp::kCmpEq: return a == b ? 1 : 0;
    case AluOp::kCmpNe: return a != b ? 1 : 0;
  }
  return 0;
}

}  // namespace

uint64_t FoldTraceHash(uint64_t hash, int32_t index, Op op) {
  hash = FnvByte(hash, static_cast<uint8_t>(op));
  for (int i = 0; i < 4; i++) {
    hash = FnvByte(hash, static_cast<uint8_t>(static_cast<uint32_t>(index) >> (8 * i)));
  }
  return hash;
}

uint64_t DigestMemoryWords(const std::vector<std::pair<uint64_t, uint64_t>>& words) {
  uint64_t hash = kFnvBasis;
  for (const auto& [addr, value] : words) {
    hash = FnvWord(hash, addr);
    hash = FnvWord(hash, value);
  }
  return hash;
}

std::string DescribeArchDivergence(const ArchState& expected, const ArchState& actual) {
  std::ostringstream out;
  for (uint8_t r = 0; r < kNumRegs; r++) {
    if (expected.regs[r] != actual.regs[r]) {
      out << "reg[" << int(r) << "]: expected 0x" << std::hex << expected.regs[r] << ", got 0x"
          << actual.regs[r];
      return out.str();
    }
  }
  for (uint8_t r = 0; r < kNumFpRegs; r++) {
    if (expected.fpregs[r] != actual.fpregs[r]) {
      out << "fpreg[" << int(r) << "]: expected 0x" << std::hex << expected.fpregs[r]
          << ", got 0x" << actual.fpregs[r];
      return out.str();
    }
  }
  if (expected.memory_digest != actual.memory_digest) {
    out << "memory digest: expected 0x" << std::hex << expected.memory_digest << ", got 0x"
        << actual.memory_digest;
    return out.str();
  }
  if (expected.retired != actual.retired) {
    out << "retired instructions: expected " << expected.retired << ", got " << actual.retired;
    return out.str();
  }
  if (expected.trace_hash != actual.trace_hash) {
    out << "trace hash: expected 0x" << std::hex << expected.trace_hash << ", got 0x"
        << actual.trace_hash;
    return out.str();
  }
  if (expected.halted != actual.halted) {
    out << "halted: expected " << expected.halted << ", got " << actual.halted;
    return out.str();
  }
  return std::string();
}

ReferenceResult RunReference(const Program& program, uint64_t max_instructions,
                             std::vector<std::pair<uint64_t, uint64_t>>* final_memory) {
  ReferenceResult result;
  ArchState& s = result.state;
  s.trace_hash = kFnvBasis;
  // Word-aligned architectural memory, mirroring SparseMemory's keying.
  std::map<uint64_t, uint64_t> memory;
  auto mem_read = [&memory](uint64_t vaddr) {
    auto it = memory.find(AlignWord(vaddr));
    return it == memory.end() ? 0 : it->second;
  };
  auto mem_write = [&memory](uint64_t vaddr, uint64_t value) {
    memory[AlignWord(vaddr)] = value;
  };
  auto ea = [&s](const MemRef& mem) {
    uint64_t addr = static_cast<uint64_t>(mem.disp);
    if (mem.base != kNoReg) {
      addr += s.regs[mem.base];
    }
    if (mem.index != kNoReg) {
      addr += s.regs[mem.index] * mem.scale;
    }
    return addr;
  };
  auto fail = [&result](std::string why) {
    result.ok = false;
    result.error = std::move(why);
    return result;
  };

  int32_t rip = 0;
  if (program.size() == 0) {
    return fail("empty program");
  }
  while (s.retired < max_instructions) {
    if (rip < 0 || rip >= program.size()) {
      return fail("control transfer outside the program");
    }
    const Instruction& in = program.at(rip);
    s.retired++;
    s.trace_hash = FoldTraceHash(s.trace_hash, rip, in.op);
    int32_t next = rip + 1;
    switch (in.op) {
      case Op::kNop:
      case Op::kLfence:
      case Op::kMfence:
      case Op::kPause:
      case Op::kSwapgs:
      case Op::kVerw:
      case Op::kFlushL1d:
      case Op::kRsbStuff:
      case Op::kXsave:
      case Op::kXrstor:
      case Op::kCpuid:
      case Op::kClflush:
        break;  // architectural no-ops (timing/microarchitectural only)
      case Op::kMovImm:
        s.regs[in.dst] = static_cast<uint64_t>(in.imm);
        break;
      case Op::kMov:
        s.regs[in.dst] = s.regs[in.src1];
        break;
      case Op::kAlu: {
        const uint64_t b = in.use_imm ? static_cast<uint64_t>(in.imm) : s.regs[in.src2];
        s.regs[in.dst] = AluCompute(in.alu, s.regs[in.src1], b);
        break;
      }
      case Op::kMul: {
        const uint64_t b = in.use_imm ? static_cast<uint64_t>(in.imm) : s.regs[in.src2];
        s.regs[in.dst] = s.regs[in.src1] * b;
        break;
      }
      case Op::kDiv: {
        const uint64_t b = in.use_imm ? static_cast<uint64_t>(in.imm) : s.regs[in.src2];
        s.regs[in.dst] = b == 0 ? 0 : s.regs[in.src1] / b;
        break;
      }
      case Op::kCmov:
        if (s.regs[in.src2] != 0) {
          s.regs[in.dst] = s.regs[in.src1];
        }
        break;
      case Op::kLea:
        s.regs[in.dst] = ea(in.mem);
        break;
      case Op::kLoad:
        s.regs[in.dst] = mem_read(ea(in.mem));
        break;
      case Op::kStore:
        mem_write(ea(in.mem), s.regs[in.src1]);
        break;
      case Op::kJmp:
        next = in.target;
        break;
      case Op::kBranchNz:
        next = s.regs[in.src1] != 0 ? in.target : rip + 1;
        break;
      case Op::kBranchZ:
        next = s.regs[in.src1] == 0 ? in.target : rip + 1;
        break;
      case Op::kBranchEqImm:
        next = s.regs[in.src1] == static_cast<uint64_t>(in.imm) ? in.target : rip + 1;
        break;
      case Op::kCall: {
        const uint64_t ret_vaddr = program.VaddrOf(rip + 1);
        s.regs[kRegSp] -= 8;
        mem_write(s.regs[kRegSp], ret_vaddr);
        next = in.target;
        break;
      }
      case Op::kRet: {
        const uint64_t actual = mem_read(s.regs[kRegSp]);
        s.regs[kRegSp] += 8;
        const int32_t target = program.IndexOf(actual);
        if (target < 0) {
          return fail("ret to address outside the program");
        }
        next = target;
        break;
      }
      case Op::kIndirectJmp:
      case Op::kIndirectCall: {
        const uint64_t actual = s.regs[in.src1];
        if (in.op == Op::kIndirectCall) {
          const uint64_t ret_vaddr = program.VaddrOf(rip + 1);
          s.regs[kRegSp] -= 8;
          mem_write(s.regs[kRegSp], ret_vaddr);
        }
        const int32_t target = program.IndexOf(actual);
        if (target < 0) {
          return fail("indirect branch to address outside the program");
        }
        next = target;
        break;
      }
      case Op::kFpOp: {
        const uint8_t fp = static_cast<uint8_t>(in.imm) & (kNumFpRegs - 1);
        s.fpregs[fp] = s.fpregs[fp] * 3 + 1;
        break;
      }
      case Op::kFpToGp:
        s.regs[in.dst] = s.fpregs[static_cast<uint8_t>(in.imm) & (kNumFpRegs - 1)];
        break;
      case Op::kGpToFp:
        s.fpregs[static_cast<uint8_t>(in.imm) & (kNumFpRegs - 1)] = s.regs[in.src1];
        break;
      case Op::kHalt:
        s.halted = true;
        break;
      case Op::kSyscall:
      case Op::kSysret:
      case Op::kMovCr3:
      case Op::kWrmsr:
      case Op::kRdmsr:
      case Op::kRdtsc:
      case Op::kRdpmc:
      case Op::kVmEnter:
      case Op::kVmExit:
      case Op::kKcall:
        return fail(std::string("unsupported opcode in difftest program: ") + OpName(in.op));
    }
    if (s.halted) {
      break;
    }
    rip = next;
  }
  if (!s.halted) {
    return fail("instruction budget exhausted before kHalt");
  }

  std::vector<std::pair<uint64_t, uint64_t>> words;
  words.reserve(memory.size());
  for (const auto& [addr, value] : memory) {
    if (value != 0) {
      words.emplace_back(addr, value);
    }
  }
  s.memory_digest = DigestMemoryWords(words);
  if (final_memory != nullptr) {
    *final_memory = std::move(words);
  }
  result.ok = true;
  return result;
}

}  // namespace specbench
