#include "src/difftest/shrink.h"

#include <utility>
#include <vector>

#include "src/util/check.h"

namespace specbench {

namespace {

Program MakeProgram(std::vector<Instruction> instructions, const Program& like) {
  return Program(std::move(instructions), like.base_vaddr(), like.symbols());
}

std::vector<Instruction> CopyInstructions(const Program& program) {
  std::vector<Instruction> out;
  out.reserve(static_cast<size_t>(program.size()));
  for (int32_t i = 0; i < program.size(); i++) {
    out.push_back(program.at(i));
  }
  return out;
}

// Shortest still-failing prefix (each candidate is the prefix plus kHalt).
Program TruncationPass(const Program& program, const ShrinkPredicate& still_fails) {
  const std::vector<Instruction> all = CopyInstructions(program);
  Instruction halt;
  halt.op = Op::kHalt;
  for (int32_t keep = 0; keep < program.size(); keep++) {
    std::vector<Instruction> candidate(all.begin(), all.begin() + keep);
    candidate.push_back(halt);
    Program p = MakeProgram(std::move(candidate), program);
    if (still_fails(p)) {
      return p;
    }
  }
  return program;
}

// Replace every non-essential instruction with kNop, repeating until no
// replacement survives the predicate.
Program NopOutPass(const Program& program, const ShrinkPredicate& still_fails) {
  std::vector<Instruction> best = CopyInstructions(program);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < best.size(); i++) {
      if (best[i].op == Op::kNop) {
        continue;
      }
      std::vector<Instruction> candidate = best;
      candidate[i] = Instruction{};  // kNop
      Program p = MakeProgram(candidate, program);
      if (still_fails(p)) {
        best = std::move(candidate);
        changed = true;
      }
    }
  }
  return MakeProgram(std::move(best), program);
}

}  // namespace

int CountNonNop(const Program& program) {
  int count = 0;
  for (int32_t i = 0; i < program.size(); i++) {
    if (program.at(i).op != Op::kNop) {
      count++;
    }
  }
  return count;
}

Program ShrinkProgram(const Program& program, const ShrinkPredicate& still_fails) {
  SPECBENCH_CHECK_MSG(still_fails(program), "ShrinkProgram input must reproduce the divergence");
  Program best = program;
  int best_size = CountNonNop(best);
  for (;;) {
    Program candidate = NopOutPass(TruncationPass(best, still_fails), still_fails);
    const int size = CountNonNop(candidate);
    if (size >= best_size) {
      break;
    }
    best = std::move(candidate);
    best_size = size;
  }
  return best;
}

}  // namespace specbench
