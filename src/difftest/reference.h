// Architectural reference interpreter for the differential-execution oracle.
//
// Executes an isa::Program the way the ISA manual would read if the machine
// had no microarchitecture at all: strictly in order, one instruction at a
// time, no caches, no predictors, no store buffer, no speculation. What it
// produces — final registers, a canonical memory digest, and a hash of the
// retired-instruction stream — is the ground truth that uarch::Machine must
// reproduce *architecturally* no matter which CPU model or mitigation
// configuration it simulates. Any disagreement is a simulator bug (or, once,
// a mitigation semantically altering execution — exactly what the oracle
// exists to catch).
//
// The interpreter supports the deterministic, user-mode subset of the ISA
// the program generator emits (src/difftest/generator.h). Opcodes whose
// architectural result is timing (rdtsc/rdpmc), privileged machine state
// (wrmsr, mov cr3, syscall, vm transitions) or host callouts (kcall) are
// rejected with ok=false rather than guessed at — the shrinker also leans on
// this validity checking to discard candidate programs that would trip a
// SPECBENCH_CHECK abort inside the machine.
#ifndef SPECTREBENCH_SRC_DIFFTEST_REFERENCE_H_
#define SPECTREBENCH_SRC_DIFFTEST_REFERENCE_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/isa/isa.h"
#include "src/isa/program.h"

namespace specbench {

// FNV-1a offset basis: the initial value of the trace hash and of every
// memory digest. Exposed so the machine-side runner starts its fold from the
// same point as the reference interpreter.
inline constexpr uint64_t kArchHashBasis = 0xcbf29ce484222325ULL;

// Canonical architectural end state. Two executions of the same program are
// architecturally equivalent iff their ArchStates compare equal.
struct ArchState {
  std::array<uint64_t, kNumRegs> regs{};
  std::array<uint64_t, kNumFpRegs> fpregs{};
  uint64_t retired = 0;        // committed instruction count
  uint64_t trace_hash = 0;     // FNV-1a over (index, op) of each retired instr
  uint64_t memory_digest = 0;  // FNV-1a over sorted nonzero (addr, value) words
  bool halted = false;

  bool operator==(const ArchState& other) const = default;
};

// Human-readable first difference between two states ("reg[3]: 12 vs 13"),
// or an empty string when they are equal.
std::string DescribeArchDivergence(const ArchState& expected, const ArchState& actual);

// FNV-1a digest of a canonical memory snapshot (SparseMemory's
// SortedNonZeroWords, or the reference interpreter's own map).
uint64_t DigestMemoryWords(const std::vector<std::pair<uint64_t, uint64_t>>& words);

// One retired instruction folded into the running trace hash.
uint64_t FoldTraceHash(uint64_t hash, int32_t index, Op op);

struct ReferenceResult {
  bool ok = false;      // executed to kHalt within budget, no unsupported ops
  std::string error;    // why ok is false
  ArchState state;
};

// Executes `program` from its base vaddr. `max_instructions` bounds runaway
// candidates (the generator only emits terminating programs, but the
// shrinker probes arbitrary mutations).
//
// When `final_memory` is non-null it receives the sorted nonzero (addr,
// value) words of the final architectural memory — the raw snapshot behind
// ArchState::memory_digest, needed by consumers that compare memory
// word-by-word instead of by digest (src/difftest/equivalence.h).
ReferenceResult RunReference(const Program& program, uint64_t max_instructions = 1'000'000,
                             std::vector<std::pair<uint64_t, uint64_t>>* final_memory = nullptr);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_DIFFTEST_REFERENCE_H_
