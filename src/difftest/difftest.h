// Differential-execution oracle: reference interpreter vs uarch::Machine.
//
// For every seed in a range, generate a program (src/difftest/generator.h),
// compute its canonical architectural end state with the reference
// interpreter (src/difftest/reference.h), then execute it on uarch::Machine
// under every requested CPU model × mitigation configuration and demand the
// exact same ArchState. Mitigations and CPU models change *timing* and
// *microarchitectural* behaviour — caches, predictors, speculation windows —
// but must never change what the program computes; any mismatch is a
// simulator bug, and gets greedily shrunk (src/difftest/shrink.h) into a
// small reproducer plus a self-contained replay command line.
//
// Determinism contract: the report depends only on (seed range, cpu list,
// config list, generator options, fault injection) — never on --jobs or
// scheduling. Each seed's work writes to its own pre-allocated slot and the
// report is assembled in seed order, the same discipline as runner/sweep.
#ifndef SPECTREBENCH_SRC_DIFFTEST_DIFFTEST_H_
#define SPECTREBENCH_SRC_DIFFTEST_DIFFTEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/cpu_model.h"
#include "src/difftest/generator.h"
#include "src/difftest/reference.h"
#include "src/isa/program.h"

namespace specbench {

// One mitigation configuration applied to a bare Machine (no OS substrate:
// the knobs below are the ones with direct machine-level state; the rest of
// MitigationConfig lives in kernel code paths difftest does not execute).
struct DiffConfig {
  std::string name;
  bool from_cpu_defaults = false;  // apply MitigationConfig::Defaults(cpu)
  bool ssbd = false;
  bool ibrs = false;
  bool stibp = false;
  bool pcid = true;
};

// The standard panel: off, defaults, ssbd, ibrs, nopcid, stibp.
std::vector<DiffConfig> DefaultDiffConfigs();
// Looks `name` up in DefaultDiffConfigs(). Returns false if unknown.
bool TryGetDiffConfigByName(const std::string& name, DiffConfig* out);

// Executes `program` on a fresh Machine for (cpu, config) and returns its
// canonical architectural end state. `inject_alu_fault_after` (when nonzero)
// arms Machine::InjectAluFaultForTesting — the oracle self-check.
ArchState RunMachineArch(const Program& program, const CpuModel& cpu, const DiffConfig& config,
                         uint64_t max_instructions, uint64_t inject_alu_fault_after = 0);

// Fast-path variant: reuses a pooled machine (uarch::MachinePool) and runs
// with sampled timing (Machine::RunSampled) — functional fast-forward
// stretches between cycle-detailed windows. The architectural end state is
// contractually identical to RunMachineArch (docs/perf.md); cycle counts and
// PMCs are estimates and are excluded from ArchState on purpose.
ArchState RunMachineArchFast(const Program& program, const CpuModel& cpu, const DiffConfig& config,
                             uint64_t max_instructions, uint64_t inject_alu_fault_after = 0);

struct DifftestOptions {
  uint64_t seed_begin = 0;
  uint64_t seed_end = 100;            // exclusive
  std::vector<Uarch> cpus;            // empty = all 8 models
  std::vector<DiffConfig> configs;    // empty = DefaultDiffConfigs()
  GeneratorOptions generator;
  uint64_t max_instructions = 1'000'000;
  int jobs = 1;                       // worker threads (0 = hardware)
  uint64_t inject_alu_fault_after = 0;  // fault every machine run (self-check)
  bool shrink = true;                 // minimize diverging programs
  bool fast = false;                  // pooled machines + sampled timing
  // With fast: additionally run the detailed engine for every cell and
  // demand the same ArchState; mismatches are reported as "fast-path:"
  // divergences. The CI fuzz job runs this mode to prove the sampling
  // contract on live seeds.
  bool cross_validate = false;
};

struct Divergence {
  uint64_t seed = 0;
  std::string cpu;     // CpuModel::name ("-" for reference-side failures)
  std::string config;  // DiffConfig::name
  std::string detail;  // first differing field, or the reference error
  Program shrunk;      // minimized reproducer (empty when shrinking is off)
  int shrunk_size = 0; // non-kNop instructions in `shrunk`
  std::string repro;   // self-contained command line replaying this case
};

struct DifftestReport {
  uint64_t programs = 0;    // seeds generated and executed
  uint64_t executions = 0;  // machine runs (programs × cpus × configs)
  uint64_t retired_instructions = 0;  // total retired across machine runs
  std::vector<Divergence> divergences;  // seed-major order, deterministic

  bool ok() const { return divergences.empty(); }
  // Deterministic human-readable summary (CLI output, CI logs).
  std::string ToText() const;
};

DifftestReport RunDifftest(const DifftestOptions& options);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_DIFFTEST_DIFFTEST_H_
