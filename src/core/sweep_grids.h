// Sweep-grid registration for the paper's figure/table drivers.
//
// Each Build*Grid function registers one cell per independent
// (CPU × config × workload) point of an experiment with the deterministic
// parallel runner (src/runner/sweep.h), replacing the hand-rolled nested
// loops the bench binaries used to run serially. A future figure or table
// driver is one registration call: build a grid, Run() it, convert the
// SweepResult back to the driver's report type for rendering.
#ifndef SPECTREBENCH_SRC_CORE_SWEEP_GRIDS_H_
#define SPECTREBENCH_SRC_CORE_SWEEP_GRIDS_H_

#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/runner/sweep.h"

namespace specbench {

struct GridOptions {
  SamplerOptions sampler;
  std::vector<Uarch> cpus = AllUarches();
};

// Figure 2: one attribution cell per CPU over the LEBench suite geomean.
Sweep BuildFigure2Grid(const GridOptions& options);
// Figure 3: one browser-attribution cell per CPU over the Octane 2 score.
Sweep BuildFigure3Grid(const GridOptions& options);
// Section 4.5: one default-vs-off cell per (CPU, PARSEC kernel).
Sweep BuildSection45Grid(const GridOptions& options);

// Differential-execution oracle as a sweep: one cell per (CPU × difftest
// config), each running every seed in [seed_begin, seed_end) against the
// reference interpreter and reporting divergence / retired-instruction
// counts. With fast=true the cell uses the pooled-machine sampled-timing
// engine (docs/perf.md) — the cell *output* must be byte-identical either
// way, which is what the CI determinism check pins.
struct DifftestGridOptions {
  std::vector<Uarch> cpus = AllUarches();
  uint64_t seed_begin = 0;
  uint64_t seed_end = 100;  // exclusive
  bool fast = false;
  uint64_t max_instructions = 1'000'000;
};
Sweep BuildDifftestGrid(const DifftestGridOptions& options);

// Shared grid-name dispatcher for `spectrebench sweep` and the sweep
// service: builds and merges the named grids ("fig2", "fig3", "sec45",
// "difftest") in list order. `seed_begin`/`seed_end`/`fast` only affect the
// difftest grid; `sampler` only the figure/section grids. Returns false
// with a one-line reason for an unknown grid name.
struct NamedGridOptions {
  std::vector<std::string> grids;
  std::vector<Uarch> cpus = AllUarches();
  SamplerOptions sampler;
  uint64_t seed_begin = 0;
  uint64_t seed_end = 100;  // exclusive
  bool fast = false;
};
bool BuildNamedGrids(const NamedGridOptions& options, Sweep* out, std::string* error);

// Flattens an attribution report into cell metrics (segments + "total").
CellOutput CellOutputFromAttribution(const AttributionReport& report);

// Inverse conversions, for the existing renderers: pick the cells the grid
// above produced out of a sweep result.
std::vector<AttributionReport> AttributionReportsFromSweep(const SweepResult& result);
std::vector<ParsecDefaultResult> ParsecResultsFromSweep(const SweepResult& result);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_CORE_SWEEP_GRIDS_H_
