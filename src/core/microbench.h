// Instruction-level microbenchmarks for the paper's Tables 3-8 (§5).
//
// Each function measures one mitigation-relevant instruction sequence on a
// fresh machine using the architectural timestamp counter, averaging over
// many iterations as the paper does ("we rely on the timestamp counter ...
// and average over one million runs"). Costs are reported net of the
// measurement-loop overhead. NaN-like absences (mitigation not applicable
// to the CPU, e.g. cr3 swap on Meltdown-immune parts) are reported by the
// experiment drivers as "N/A", mirroring the paper's tables.
#ifndef SPECTREBENCH_SRC_CORE_MICROBENCH_H_
#define SPECTREBENCH_SRC_CORE_MICROBENCH_H_

#include "src/cpu/cpu_model.h"

namespace specbench {

// Table 3: cycles for syscall, sysret and (on vulnerable parts) mov cr3.
struct EntryExitCosts {
  double syscall = 0;
  double sysret = 0;
  double swap_cr3 = 0;
};
EntryExitCosts MeasureEntryExit(const CpuModel& cpu);

// Table 4: cycles for one verw (buffer-clearing on MDS-vulnerable parts).
double MeasureVerw(const CpuModel& cpu);

// Table 5: cycles for an indirect branch under each Spectre V2 regime.
struct IndirectBranchCosts {
  double baseline = 0;           // BTB-predicted indirect call
  double ibrs = 0;               // with SPEC_CTRL.IBRS set
  double generic_retpoline = 0;  // Figure 4's call/ret sequence
  double amd_retpoline = 0;      // lfence + indirect call
};
IndirectBranchCosts MeasureIndirectBranch(const CpuModel& cpu);

// Table 6: cycles for one IBPB (wrmsr to IA32_PRED_CMD).
double MeasureIbpb(const CpuModel& cpu);

// Table 7: cycles to stuff the RSB with benign entries.
double MeasureRsbStuff(const CpuModel& cpu);

// Table 8: cycles for one lfence in a loop.
double MeasureLfence(const CpuModel& cpu);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_CORE_MICROBENCH_H_
