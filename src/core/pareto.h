// The security x overhead Pareto frontier (ROADMAP item 4).
//
// Joins the attack-suite verdict matrix (src/attack/suite.h) with overhead
// measurements over a fixed workload basket — LEBench getpid and
// context-switch, Octane richards (all three with the PR-5 CycleAttribution
// sink attached for cause-level breakdowns), plus PARSEC swaptions and
// facesim (which price SSBD and nosmt, the knobs invisible to the syscall
// benchmarks). For every CPU the report ranks the Table-1 configuration
// axis, marks the non-dominated frontier, names the *cheapest fully
// protecting* config versus the *most protected* one, and prices the gap
// between them — the "Beyond Over-Protection" argument (PAPERS.md) as a
// number. A per-attack attribution says which knob of the chosen config is
// load-bearing ("which knob saved you") and which are redundant.
//
// Everything is deterministic and byte-stable for any job count: attack
// cells and measurement cells run on the shared pool writing pre-allocated
// slots, all randomness derives from (base_seed, cell identity), and the
// renderers emit fixed key order with fixed-precision numbers (no
// timestamps, durations, or host facts). tests/pareto_golden_test.cc pins
// the exact bytes.
#ifndef SPECTREBENCH_SRC_CORE_PARETO_H_
#define SPECTREBENCH_SRC_CORE_PARETO_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/attack/suite.h"
#include "src/cpu/cpu_model.h"
#include "src/uarch/cycle_attribution.h"

namespace specbench {

struct ParetoOptions {
  std::vector<Uarch> cpus = AllUarches();
  int trials = 5;    // attack-suite repeats per cell (leak rate resolution)
  int jobs = 0;      // 0 = hardware_concurrency
  uint64_t base_seed = 1;
};

// One configuration's security and cost on one CPU.
struct ConfigEvaluation {
  std::string config;
  // Security: over the attacks this CPU is actually vulnerable to.
  int attempted = 0;        // hardware-vulnerable attacks tried
  int protected_count = 0;  // of those, zero leaks across all trials
  bool fully_protected = false;
  // Defense depth: defended() claims over all registered specs, including
  // knobs the hardware does not need — what "most protected" maximizes.
  int claims = 0;
  // Cost: geomean overhead across the workload basket vs the "off" config.
  double overhead_pct = 0.0;
  // Cause-level breakdown summed over the counters basket (in-window).
  std::array<uint64_t, kNumCauseTags> cause_cycles{};
  // Non-dominated: no other config has >= protection and <= overhead with
  // one strict.
  bool on_frontier = false;
};

// Which knobs of a config actually block one attack.
struct AttackAttribution {
  std::string attack;
  // Knobs whose individual removal re-opens the leak (per defended()).
  std::vector<std::string> critical_knobs;
  // Active candidate knobs that are individually removable — redundant
  // cover for this attack.
  std::vector<std::string> redundant_knobs;
};

struct CpuPareto {
  std::string cpu;
  std::vector<ConfigEvaluation> configs;  // matrix registration order
  // Cheapest fully-protecting config ("" when nothing on the axis fully
  // protects this CPU); ties break toward earlier registration.
  std::string cheapest_sufficient;
  // Max defended() claims; ties break toward earlier registration.
  std::string most_protected;
  // overhead(most_protected) - overhead(cheapest_sufficient); the price of
  // over-protection. 0 when they coincide or no config suffices.
  double over_protection_gap_pct = 0.0;
  // Per-attack knob attribution for the cheapest sufficient config.
  std::vector<AttackAttribution> attributions;
};

struct ParetoReport {
  SuiteResult suite;          // the full verdict matrix
  std::vector<CpuPareto> cpus;
};

// The measurement basket (suite:kernel names, fixed order).
const std::vector<std::string>& ParetoWorkloads();

// Runs the attack suite and the overhead basket (both on the shared pool)
// and assembles the per-CPU frontier.
ParetoReport BuildParetoReport(const ParetoOptions& options);

// Byte-stable renderers (fixed key order / column order, fixed-precision
// numbers, no environment facts).
std::string RenderParetoText(const ParetoReport& report);
std::string RenderParetoJson(const ParetoReport& report);
std::string RenderParetoCsv(const ParetoReport& report);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_CORE_PARETO_H_
