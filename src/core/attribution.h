// The paper's central methodology: attribute end-to-end slowdown to
// individual mitigations (§4.1).
//
// "To measure the impact of individual mitigations, we run Linux with the
// default set of mitigations enabled, and then use kernel boot parameters to
// successively disable them to determine the overhead that each one causes."
//
// AttributeOsMitigations does exactly that: measure the default
// configuration (sampling until the 95% CI converges), then disable one
// mitigation at a time — in a fixed order — re-measuring after each step
// down to mitigations=off. The per-mitigation overhead is the successive
// difference; the segments stack to the total (Figures 2 and 3).
#ifndef SPECTREBENCH_SRC_CORE_ATTRIBUTION_H_
#define SPECTREBENCH_SRC_CORE_ATTRIBUTION_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cpu/cpu_model.h"
#include "src/jit/jit.h"
#include "src/os/mitigation_config.h"
#include "src/stats/sampler.h"

namespace specbench {

// One OS-level mitigation knob in the successive-disable sweep.
struct MitigationKnob {
  std::string id;
  std::string label;
  // Whether the knob does anything in this CPU's default configuration.
  std::function<bool(const CpuModel&, const MitigationConfig&)> relevant;
  // Turns the mitigation off.
  std::function<void(MitigationConfig*)> disable;
};

// The knobs measured for Figure 2, in the disable order used by the sweep:
// PTI (Meltdown), MDS buffer clearing, Spectre V2 (retpolines/eIBRS + IBPB +
// RSB stuffing), Spectre V1 (lfence + masking), and "other" (everything
// remaining down to mitigations=off).
const std::vector<MitigationKnob>& OsMitigationKnobs();

struct AttributionSegment {
  std::string id;
  std::string label;
  Estimate overhead_pct;  // percentage points of the stacked total
};

struct AttributionReport {
  std::string cpu;
  std::string workload;
  Estimate total_overhead_pct;
  std::vector<AttributionSegment> segments;  // only knobs with nonzero effect

  // Sampler health, aggregated over every configuration measured: finite
  // samples used in the estimates (non-finite draws are excluded; see
  // SampleResult), whether every configuration's CI converged, and whether
  // any measurement returned a non-finite value (surfaced rather than
  // silently poisoning the estimates).
  size_t total_samples = 0;
  bool converged = true;
  bool saw_non_finite = false;

  // Sum of segment midpoints (== total up to measurement error).
  double SegmentSum() const;
};

// A measurement under one OS configuration; seed varies per sample so the
// injected run-to-run noise exercises the CI machinery. Returns a score or
// cost for the whole workload.
using OsMeasureFn = std::function<double(const MitigationConfig&, uint64_t seed)>;

// Default `base_seed` for the attribution sweeps below. Seeds for the
// per-configuration measurements are derived from the base via SplitMix64,
// so a caller (e.g. a parallel sweep cell) can substitute its own
// deterministic seed and get results independent of execution order.
inline constexpr uint64_t kDefaultAttributionSeed = 1000;

// Successively disables knobs on top of the CPU's default configuration.
// `lower_is_better` selects cost (cycles) vs score (Octane) semantics.
AttributionReport AttributeOsMitigations(const CpuModel& cpu, const std::string& workload,
                                         const OsMeasureFn& measure, bool lower_is_better,
                                         const SamplerOptions& options = SamplerOptions(),
                                         uint64_t base_seed = kDefaultAttributionSeed);

// Browser-side attribution (Figure 3): sweeps the JIT mitigations (index
// masking, object guards, other JavaScript) and then the OS-side knobs that
// matter to a seccomp-sandboxed browser (SSBD, other OS).
using BrowserMeasureFn =
    std::function<double(const JitConfig&, const MitigationConfig&, uint64_t seed)>;

AttributionReport AttributeBrowserMitigations(const CpuModel& cpu,
                                              const BrowserMeasureFn& measure,
                                              const SamplerOptions& options = SamplerOptions(),
                                              uint64_t base_seed = kDefaultAttributionSeed);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_CORE_ATTRIBUTION_H_
