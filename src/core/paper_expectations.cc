#include "src/core/paper_expectations.h"

#include "src/util/check.h"

namespace specbench {

namespace {

size_t Index(Uarch uarch) {
  SPECBENCH_CHECK(uarch < Uarch::kCount);
  return static_cast<size_t>(uarch);
}

}  // namespace

PaperTable3Row PaperTable3(Uarch uarch) {
  static const PaperTable3Row kRows[] = {
      {49, 40, 206},            // Broadwell
      {42, 42, 191},            // Skylake Client
      {70, 43, std::nullopt},   // Cascade Lake
      {21, 29, std::nullopt},   // Ice Lake Client
      {45, 32, std::nullopt},   // Ice Lake Server
      {63, 53, std::nullopt},   // Zen
      {53, 46, std::nullopt},   // Zen 2
      {83, 55, std::nullopt},   // Zen 3
  };
  return kRows[Index(uarch)];
}

std::optional<double> PaperTable4(Uarch uarch) {
  static const std::optional<double> kRows[] = {
      610, 518, 458, std::nullopt, std::nullopt, std::nullopt, std::nullopt, std::nullopt,
  };
  return kRows[Index(uarch)];
}

PaperTable5Row PaperTable5(Uarch uarch) {
  static const PaperTable5Row kRows[] = {
      {16, 32, 28, std::nullopt},  // Broadwell
      {11, 15, 19, std::nullopt},  // Skylake Client
      {3, 0, 49, std::nullopt},    // Cascade Lake
      {5, 0, 21, std::nullopt},    // Ice Lake Client
      {1, 1, 50, std::nullopt},    // Ice Lake Server
      {30, std::nullopt, 25, 28},  // Zen (no IBRS)
      {3, 13, 14, 0},              // Zen 2
      {23, 19, 13, 18},            // Zen 3
  };
  return kRows[Index(uarch)];
}

double PaperTable6Ibpb(Uarch uarch) {
  static const double kRows[] = {5600, 4500, 340, 2500, 840, 7400, 1100, 800};
  return kRows[Index(uarch)];
}

double PaperTable7RsbStuff(Uarch uarch) {
  static const double kRows[] = {130, 130, 120, 40, 69, 114, 68, 94};
  return kRows[Index(uarch)];
}

double PaperTable8Lfence(Uarch uarch) {
  static const double kRows[] = {28, 20, 15, 8, 13, 48, 4, 30};
  return kRows[Index(uarch)];
}

}  // namespace specbench
