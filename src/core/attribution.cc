#include "src/core/attribution.h"

#include "src/util/check.h"
#include "src/util/rng.h"

namespace specbench {

namespace {

// Measures one configuration with the adaptive sampler; the seed changes per
// sample so the simulated run-to-run noise drives the CI. Sampler health is
// folded into the report.
Estimate MeasureConfig(const OsMeasureFn& measure, const MitigationConfig& config,
                       uint64_t seed_base, const SamplerOptions& options,
                       AttributionReport* report) {
  uint64_t seed = seed_base;
  const SampleResult result =
      SampleUntilConverged([&] { return measure(config, seed++); }, options);
  report->total_samples += result.samples;
  report->converged = report->converged && result.converged;
  report->saw_non_finite = report->saw_non_finite || result.saw_non_finite();
  return result.estimate;
}

// Overhead of `slow` relative to `fast`, respecting metric direction.
Estimate OverheadPct(const Estimate& with_mitigation, const Estimate& without,
                     bool lower_is_better) {
  if (lower_is_better) {
    return RelativeOverheadPercent(with_mitigation, without);
  }
  // Higher-is-better score: overhead = (score_off / score_on - 1) * 100.
  return RelativeOverheadPercent(without, with_mitigation);
}

}  // namespace

const std::vector<MitigationKnob>& OsMitigationKnobs() {
  static const std::vector<MitigationKnob> kKnobs = {
      {"pti", "Page Table Isolation",
       [](const CpuModel& cpu, const MitigationConfig& c) {
         (void)cpu;
         return c.pti;
       },
       [](MitigationConfig* c) { c->pti = false; }},
      {"mds", "MDS buffer clearing",
       [](const CpuModel& cpu, const MitigationConfig& c) {
         return c.mds_clear_buffers && cpu.vuln.mds;
       },
       [](MitigationConfig* c) { c->mds_clear_buffers = false; }},
      {"spectre_v2", "Spectre V2 (retpoline/IBRS + IBPB + RSB)",
       [](const CpuModel& cpu, const MitigationConfig& c) {
         (void)cpu;
         return c.retpoline != RetpolineMode::kNone || c.ibrs != IbrsMode::kOff ||
                c.ibpb_on_context_switch || c.rsb_stuff_on_context_switch;
       },
       [](MitigationConfig* c) {
         c->retpoline = RetpolineMode::kNone;
         c->ibrs = IbrsMode::kOff;
         c->ibpb_on_context_switch = false;
         c->rsb_stuff_on_context_switch = false;
       }},
      {"spectre_v1", "Spectre V1 (lfence + masking)",
       [](const CpuModel& cpu, const MitigationConfig& c) {
         (void)cpu;
         return c.lfence_after_swapgs || c.kernel_index_masking;
       },
       [](MitigationConfig* c) {
         c->lfence_after_swapgs = false;
         c->kernel_index_masking = false;
       }},
      {"other", "Other mitigations",
       [](const CpuModel& cpu, const MitigationConfig& c) {
         return c.l1tf_pte_inversion || c.ssbd != SsbdMode::kOff ||
                (cpu.vuln.l1tf && c.l1d_flush_on_vmentry);
       },
       [](MitigationConfig* c) {
         c->l1tf_pte_inversion = false;
         c->l1d_flush_on_vmentry = false;
         c->ssbd = SsbdMode::kOff;
       }},
  };
  return kKnobs;
}

double AttributionReport::SegmentSum() const {
  double sum = 0.0;
  for (const AttributionSegment& segment : segments) {
    sum += segment.overhead_pct.value;
  }
  return sum;
}

AttributionReport AttributeOsMitigations(const CpuModel& cpu, const std::string& workload,
                                         const OsMeasureFn& measure, bool lower_is_better,
                                         const SamplerOptions& options, uint64_t base_seed) {
  AttributionReport report;
  report.cpu = UarchName(cpu.uarch);
  report.workload = workload;

  // Every configuration's sample-seed stream derives from base_seed alone,
  // so the whole attribution chain is a pure function of its inputs.
  uint64_t seed_stream = base_seed;
  MitigationConfig config = MitigationConfig::Defaults(cpu);
  Estimate current = MeasureConfig(measure, config, SplitMix64Next(&seed_stream), options,
                                   &report);
  const Estimate with_all = current;

  for (const MitigationKnob& knob : OsMitigationKnobs()) {
    if (!knob.relevant(cpu, config)) {
      continue;
    }
    MitigationConfig next = config;
    knob.disable(&next);
    const Estimate without =
        MeasureConfig(measure, next, SplitMix64Next(&seed_stream), options, &report);
    // This knob's contribution: overhead of keeping it on, relative to the
    // configuration with it (and everything later) still enabled.
    const Estimate delta = OverheadPct(current, without, lower_is_better);
    report.segments.push_back(AttributionSegment{knob.id, knob.label, delta});
    config = next;
    current = without;
  }
  // `current` is now the mitigations=off baseline.
  report.total_overhead_pct = OverheadPct(with_all, current, lower_is_better);
  return report;
}

AttributionReport AttributeBrowserMitigations(const CpuModel& cpu,
                                              const BrowserMeasureFn& measure,
                                              const SamplerOptions& options,
                                              uint64_t base_seed) {
  AttributionReport report;
  report.cpu = UarchName(cpu.uarch);
  report.workload = "octane2";

  // Figure 3 sweep order: JS-level mitigations first (blue in the paper),
  // then the OS-level ones that apply to the sandboxed browser (green).
  struct Step {
    std::string id;
    std::string label;
    std::function<void(JitConfig*, MitigationConfig*)> disable;
  };
  const std::vector<Step> steps = {
      {"index_masking", "Index masking",
       [](JitConfig* jit, MitigationConfig*) { jit->index_masking = false; }},
      {"object_guards", "Object mitigations",
       [](JitConfig* jit, MitigationConfig*) { jit->object_guards = false; }},
      {"other_js", "Other JavaScript",
       [](JitConfig* jit, MitigationConfig*) { jit->pointer_poisoning = false; }},
      {"ssbd", "SSBD (seccomp)",
       [](JitConfig*, MitigationConfig* os) { os->ssbd = SsbdMode::kOff; }},
      {"other_os", "Other OS",
       [](JitConfig*, MitigationConfig* os) { *os = MitigationConfig::AllOff(); }},
  };

  JitConfig jit = JitConfig::AllOn();
  MitigationConfig os = MitigationConfig::Defaults(cpu);
  uint64_t seed_stream = base_seed;
  auto measure_current = [&] {
    uint64_t seed = SplitMix64Next(&seed_stream);
    const SampleResult result =
        SampleUntilConverged([&] { return measure(jit, os, seed++); }, options);
    report.total_samples += result.samples;
    report.converged = report.converged && result.converged;
    report.saw_non_finite = report.saw_non_finite || result.saw_non_finite();
    return result.estimate;
  };

  Estimate current = measure_current();
  const Estimate with_all = current;
  for (const Step& step : steps) {
    JitConfig next_jit = jit;
    MitigationConfig next_os = os;
    step.disable(&next_jit, &next_os);
    jit = next_jit;
    os = next_os;
    const Estimate without = measure_current();
    // Octane is higher-is-better: disabling a mitigation raises the score.
    // This step's overhead = (score_without / score_with - 1) * 100.
    report.segments.push_back(
        AttributionSegment{step.id, step.label,
                           RelativeOverheadPercent(without, current)});
    current = without;
  }
  report.total_overhead_pct = RelativeOverheadPercent(current, with_all);
  return report;
}

}  // namespace specbench
