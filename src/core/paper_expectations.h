// The paper's published numbers, embedded for side-by-side comparison.
//
// Tables 3-8 are *calibration inputs* (the CPU models were parameterized
// from them); the benches print measured-vs-paper to show the calibration
// holds through the actual instruction paths. The figure-level expectations
// are qualitative *outputs*: shapes the simulation must reproduce without
// having been given the numbers (see EXPERIMENTS.md).
#ifndef SPECTREBENCH_SRC_CORE_PAPER_EXPECTATIONS_H_
#define SPECTREBENCH_SRC_CORE_PAPER_EXPECTATIONS_H_

#include <optional>

#include "src/cpu/cpu_model.h"

namespace specbench {

// Values absent from the paper (marked "N/A") are nullopt.
struct PaperTable3Row {
  double syscall;
  double sysret;
  std::optional<double> swap_cr3;
};
PaperTable3Row PaperTable3(Uarch uarch);

// Table 4: verw cycles; nullopt where the CPU is not MDS-vulnerable.
std::optional<double> PaperTable4(Uarch uarch);

struct PaperTable5Row {
  double baseline;
  std::optional<double> ibrs_delta;
  double generic_delta;
  std::optional<double> amd_delta;
};
PaperTable5Row PaperTable5(Uarch uarch);

double PaperTable6Ibpb(Uarch uarch);
double PaperTable7RsbStuff(Uarch uarch);
double PaperTable8Lfence(Uarch uarch);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_CORE_PAPER_EXPECTATIONS_H_
