// Experiment drivers: one entry point per table/figure of the paper.
//
// Each Run* function produces structured results; each Render* function
// turns them into the terminal tables / ASCII bar charts the bench binaries
// print. See DESIGN.md's experiment index for the mapping.
#ifndef SPECTREBENCH_SRC_CORE_EXPERIMENTS_H_
#define SPECTREBENCH_SRC_CORE_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "src/core/attribution.h"
#include "src/core/microbench.h"
#include "src/hv/hypervisor.h"
#include "src/runner/sweep.h"
#include "src/stats/sampler.h"

namespace specbench {

// --- Tables 1 and 2: configuration ------------------------------------------
std::string RenderTable1MitigationMatrix();
std::string RenderTable2CpuInfo();

// --- Figure 2: LEBench overhead attribution ---------------------------------
// Cells (one per CPU) execute on the deterministic parallel runner; see
// src/core/sweep_grids.h for the grid registration. Results are identical
// for any `runner.jobs`.
std::vector<AttributionReport> RunFigure2LeBench(const SamplerOptions& options,
                                                 const std::vector<Uarch>& cpus = AllUarches(),
                                                 const RunnerOptions& runner = RunnerOptions());
std::string RenderFigure2(const std::vector<AttributionReport>& reports);
// CSV form of any attribution-report set (Figures 2 and 3): one row per
// (cpu, segment) plus a TOTAL row per CPU.
std::string RenderAttributionCsv(const std::vector<AttributionReport>& reports);

// --- Figure 3: Octane 2 overhead attribution --------------------------------
std::vector<AttributionReport> RunFigure3Octane(const SamplerOptions& options,
                                                const std::vector<Uarch>& cpus = AllUarches(),
                                                const RunnerOptions& runner = RunnerOptions());
std::string RenderFigure3(const std::vector<AttributionReport>& reports);

// --- Section 4.4: virtual machine workloads ---------------------------------
struct VmWorkloadResult {
  std::string cpu;
  std::string workload;           // "lebench-in-vm", "lfs-smallfile", ...
  Estimate overhead_pct;          // host mitigations on vs off
  uint64_t vm_exits_protected = 0;
};
std::vector<VmWorkloadResult> RunSection44Vm(const SamplerOptions& options,
                                             const std::vector<Uarch>& cpus = AllUarches());
std::string RenderSection44(const std::vector<VmWorkloadResult>& results);

// --- Section 4.5: PARSEC under default mitigations --------------------------
struct ParsecDefaultResult {
  std::string cpu;
  std::string kernel;
  Estimate overhead_pct;
};
std::vector<ParsecDefaultResult> RunSection45Parsec(
    const SamplerOptions& options, const std::vector<Uarch>& cpus = AllUarches(),
    const RunnerOptions& runner = RunnerOptions());
std::string RenderSection45(const std::vector<ParsecDefaultResult>& results);

// --- Tables 3-8: per-mitigation microbenchmarks -----------------------------
// Each renderer runs the measurement across all CPUs and prints measured vs
// paper values.
std::string RenderTable3EntryExit();
std::string RenderTable4Verw();
std::string RenderTable5IndirectBranch();
std::string RenderTable6Ibpb();
std::string RenderTable7RsbStuff();
std::string RenderTable8Lfence();

// --- Figure 5: SSBD on PARSEC ------------------------------------------------
struct Fig5Row {
  std::string cpu;
  double swaptions_pct = 0;
  double facesim_pct = 0;
  double bodytrack_pct = 0;
};
std::vector<Fig5Row> RunFigure5Ssbd(const std::vector<Uarch>& cpus = AllUarches());
std::string RenderFigure5(const std::vector<Fig5Row>& rows);

// --- Tables 9 and 10: the speculation probe ---------------------------------
std::string RenderTables9And10();

// --- Section 6.2.2: eIBRS bimodal kernel-entry latency (extension) ----------
std::string RenderEibrsBimodal();

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_CORE_EXPERIMENTS_H_
