// First-class per-mitigation cycle counters, read from the uarch event bus.
//
// The paper infers each mitigation's cost by difference-of-runs (§4.1,
// src/core/attribution.h). The decomposed machine can do better: every
// cycle the simulator spends is charged to a CauseTag on the event bus, so
// one run under the default configuration yields the whole breakdown. This
// module packages that as `CounterBreakdown` rows for the `spectrebench
// counters` subcommand (byte-stable JSON, golden-tested) and for the
// agreement test that cross-checks the bus-derived totals against the
// difference-of-runs estimate on the Figure 2/3 grids (docs/uarch.md
// discusses where and why the two methods diverge).
#ifndef SPECTREBENCH_SRC_CORE_COUNTERS_H_
#define SPECTREBENCH_SRC_CORE_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/cpu_model.h"
#include "src/jit/jit.h"
#include "src/os/mitigation_config.h"
#include "src/uarch/cycle_attribution.h"

namespace specbench {

// One (cpu, workload kernel) cell of per-cause cycle counters. Cycle fields
// cover the workload's lfence+rdtsc measurement window; event counts cover
// the whole run (they are diagnostics, not part of the accounting identity).
struct CounterBreakdown {
  std::string cpu;
  std::string workload;  // "lebench:<kernel>" or "octane:<kernel>"
  uint64_t window_cycles = 0;
  std::array<uint64_t, kNumCauseTags> cause_cycles{};
  uint64_t retired = 0;
  uint64_t episodes = 0;
  uint64_t cache_fills = 0;
  uint64_t fill_buffer_touches = 0;
  uint64_t tlb_flushes = 0;
  uint64_t store_buffer_drains = 0;

  uint64_t Cause(CauseTag tag) const {
    return cause_cycles[static_cast<size_t>(tag)];
  }
  // Cycles not charged to any mitigation (CauseTag::kNone).
  uint64_t baseline_cycles() const { return Cause(CauseTag::kNone); }
  // This mitigation's in-window cost as a percentage of the baseline work —
  // the bus-side analogue of the §4.1 relative overhead.
  double OverheadPct(CauseTag tag) const;
  // Total mitigation overhead: (window - baseline) / baseline * 100.
  double TotalOverheadPct() const;
};

// Runs one LEBench / Octane kernel with a CycleAttribution sink attached and
// folds the window into a CounterBreakdown. Deterministic: the measurement
// noise model only perturbs the workload's returned score, never the bus.
CounterBreakdown MeasureLeBenchCounters(const CpuModel& cpu, const MitigationConfig& config,
                                        const std::string& kernel);
CounterBreakdown MeasureOctaneCounters(const CpuModel& cpu, const JitConfig& jit_config,
                                       const MitigationConfig& os_config,
                                       const std::string& kernel);

// Renders rows as byte-stable JSON: fixed key order, every CauseTag in enum
// order, no timestamps / hostnames / durations (the golden-file test pins
// the exact bytes).
std::string RenderCountersJson(const std::vector<CounterBreakdown>& rows);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_CORE_COUNTERS_H_
