#include "src/core/sweep_grids.h"

#include <utility>

#include "src/difftest/difftest.h"
#include "src/difftest/generator.h"
#include "src/difftest/reference.h"
#include "src/util/rng.h"
#include "src/workload/lebench.h"
#include "src/workload/octane.h"
#include "src/workload/parsec.h"

namespace specbench {

CellOutput CellOutputFromAttribution(const AttributionReport& report) {
  CellOutput out;
  for (const AttributionSegment& segment : report.segments) {
    out.metrics.push_back(CellMetric{segment.id, segment.label, segment.overhead_pct});
  }
  out.metrics.push_back(CellMetric{"total", "Total", report.total_overhead_pct});
  out.samples = report.total_samples;
  out.converged = report.converged;
  out.saw_non_finite = report.saw_non_finite;
  return out;
}

Sweep BuildFigure2Grid(const GridOptions& options) {
  Sweep sweep;
  for (Uarch u : options.cpus) {
    sweep.Add(SweepCellKey{UarchName(u), "attribution", "lebench"},
              [u, sampler = options.sampler](uint64_t seed) {
                const CpuModel& cpu = GetCpuModel(u);
                return CellOutputFromAttribution(AttributeOsMitigations(
                    cpu, "lebench",
                    [&cpu](const MitigationConfig& config, uint64_t sample_seed) {
                      return LeBench::SuiteGeomean(LeBench::RunSuite(cpu, config, sample_seed));
                    },
                    /*lower_is_better=*/true, sampler, seed));
              });
  }
  return sweep;
}

Sweep BuildFigure3Grid(const GridOptions& options) {
  Sweep sweep;
  for (Uarch u : options.cpus) {
    sweep.Add(SweepCellKey{UarchName(u), "attribution", "octane2"},
              [u, sampler = options.sampler](uint64_t seed) {
                const CpuModel& cpu = GetCpuModel(u);
                return CellOutputFromAttribution(AttributeBrowserMitigations(
                    cpu,
                    [&cpu](const JitConfig& jit, const MitigationConfig& os,
                           uint64_t sample_seed) {
                      return Octane::SuiteScore(Octane::RunSuite(cpu, jit, os, sample_seed));
                    },
                    sampler, seed));
              });
  }
  return sweep;
}

Sweep BuildSection45Grid(const GridOptions& options) {
  Sweep sweep;
  for (Uarch u : options.cpus) {
    for (const std::string& name : Parsec::KernelNames()) {
      sweep.Add(SweepCellKey{UarchName(u), "default-vs-off", name},
                [u, name, sampler = options.sampler](uint64_t seed) {
                  const CpuModel& cpu = GetCpuModel(u);
                  uint64_t stream = seed;
                  uint64_t seed_def = SplitMix64Next(&stream);
                  uint64_t seed_off = SplitMix64Next(&stream);
                  const SampleResult def = SampleUntilConverged(
                      [&] {
                        return Parsec::RunKernel(name, cpu, MitigationConfig::Defaults(cpu),
                                                 seed_def++);
                      },
                      sampler);
                  const SampleResult off = SampleUntilConverged(
                      [&] {
                        return Parsec::RunKernel(name, cpu, MitigationConfig::AllOff(),
                                                 seed_off++);
                      },
                      sampler);
                  CellOutput out;
                  out.metrics.push_back(
                      CellMetric{"total", "Default-mitigation overhead",
                                 RelativeOverheadPercent(def.estimate, off.estimate)});
                  out.samples = def.samples + off.samples;
                  out.converged = def.converged && off.converged;
                  out.saw_non_finite = def.saw_non_finite() || off.saw_non_finite();
                  return out;
                });
    }
  }
  return sweep;
}

std::vector<AttributionReport> AttributionReportsFromSweep(const SweepResult& result) {
  std::vector<AttributionReport> reports;
  for (const SweepCellResult& cell : result.cells) {
    if (cell.key.config != "attribution") {
      continue;
    }
    AttributionReport report;
    report.cpu = cell.key.cpu;
    report.workload = cell.key.workload;
    for (const CellMetric& metric : cell.output.metrics) {
      if (metric.id == "total") {
        report.total_overhead_pct = metric.estimate;
      } else {
        report.segments.push_back(AttributionSegment{metric.id, metric.label, metric.estimate});
      }
    }
    report.total_samples = cell.output.samples;
    report.converged = cell.output.converged;
    report.saw_non_finite = cell.output.saw_non_finite;
    reports.push_back(std::move(report));
  }
  return reports;
}

std::vector<ParsecDefaultResult> ParsecResultsFromSweep(const SweepResult& result) {
  std::vector<ParsecDefaultResult> results;
  for (const SweepCellResult& cell : result.cells) {
    if (cell.key.config != "default-vs-off") {
      continue;
    }
    ParsecDefaultResult r;
    r.cpu = cell.key.cpu;
    r.kernel = cell.key.workload;
    for (const CellMetric& metric : cell.output.metrics) {
      if (metric.id == "total") {
        r.overhead_pct = metric.estimate;
      }
    }
    results.push_back(std::move(r));
  }
  return results;
}

Sweep BuildDifftestGrid(const DifftestGridOptions& options) {
  Sweep sweep;
  for (Uarch u : options.cpus) {
    for (const DiffConfig& config : DefaultDiffConfigs()) {
      sweep.Add(
          SweepCellKey{UarchName(u), config.name, "difftest"},
          [u, config, begin = options.seed_begin, end = options.seed_end, fast = options.fast,
           max_instructions = options.max_instructions](uint64_t) {
            // The oracle seeds are the cell's content, not sampling noise:
            // the cell ignores the runner-derived seed so its output bytes
            // depend only on (cpus, configs, seed window, max_instructions)
            // — identical for any --jobs value and for fast vs detailed.
            const CpuModel& cpu = GetCpuModel(u);
            uint64_t divergences = 0;
            uint64_t retired = 0;
            for (uint64_t seed = begin; seed < end; seed++) {
              const Program program = GenerateProgram(seed, GeneratorOptions{});
              const ReferenceResult ref = RunReference(program, max_instructions);
              if (!ref.ok) {
                divergences++;
                continue;
              }
              const ArchState got = fast
                                        ? RunMachineArchFast(program, cpu, config,
                                                             max_instructions)
                                        : RunMachineArch(program, cpu, config, max_instructions);
              retired += got.retired;
              if (!(got == ref.state)) {
                divergences++;
              }
            }
            CellOutput out;
            out.metrics.push_back(
                CellMetric{"divergences", "Oracle divergences",
                           Estimate{static_cast<double>(divergences), 0.0}});
            out.metrics.push_back(CellMetric{
                "retired", "Instructions retired", Estimate{static_cast<double>(retired), 0.0}});
            out.samples = static_cast<size_t>(end - begin);
            return out;
          });
    }
  }
  return sweep;
}

bool BuildNamedGrids(const NamedGridOptions& options, Sweep* out, std::string* error) {
  Sweep sweep;
  GridOptions grid;
  grid.sampler = options.sampler;
  grid.cpus = options.cpus;
  for (const std::string& name : options.grids) {
    if (name == "fig2") {
      sweep.Merge(BuildFigure2Grid(grid));
    } else if (name == "fig3") {
      sweep.Merge(BuildFigure3Grid(grid));
    } else if (name == "sec45") {
      sweep.Merge(BuildSection45Grid(grid));
    } else if (name == "difftest") {
      DifftestGridOptions difftest;
      difftest.cpus = options.cpus;
      difftest.seed_begin = options.seed_begin;
      difftest.seed_end = options.seed_end;
      difftest.fast = options.fast;
      sweep.Merge(BuildDifftestGrid(difftest));
    } else {
      *error = "unknown grid: \"" + name + "\" (valid: fig2, fig3, sec45, difftest)";
      return false;
    }
  }
  *out = std::move(sweep);
  return true;
}

// --- Runner-backed experiment drivers (declared in experiments.h) -----------

std::vector<AttributionReport> RunFigure2LeBench(const SamplerOptions& options,
                                                 const std::vector<Uarch>& cpus,
                                                 const RunnerOptions& runner) {
  return AttributionReportsFromSweep(BuildFigure2Grid(GridOptions{options, cpus}).Run(runner));
}

std::vector<AttributionReport> RunFigure3Octane(const SamplerOptions& options,
                                                const std::vector<Uarch>& cpus,
                                                const RunnerOptions& runner) {
  return AttributionReportsFromSweep(BuildFigure3Grid(GridOptions{options, cpus}).Run(runner));
}

std::vector<ParsecDefaultResult> RunSection45Parsec(const SamplerOptions& options,
                                                    const std::vector<Uarch>& cpus,
                                                    const RunnerOptions& runner) {
  return ParsecResultsFromSweep(BuildSection45Grid(GridOptions{options, cpus}).Run(runner));
}

}  // namespace specbench
