#include "src/core/experiments.h"

#include <cmath>
#include <sstream>

#include "src/attack/speculation_probe.h"
#include "src/core/paper_expectations.h"
#include "src/isa/program.h"
#include "src/os/kernel.h"
#include "src/uarch/machine.h"
#include "src/util/text_table.h"
#include "src/workload/lebench.h"
#include "src/workload/lfs.h"
#include "src/workload/measurement.h"
#include "src/workload/octane.h"
#include "src/workload/parsec.h"

namespace specbench {

namespace {

std::string Check(bool value) { return value ? "yes" : ""; }

std::string OptStr(const std::optional<double>& value, int decimals = 0) {
  return value.has_value() ? FormatDouble(*value, decimals) : "N/A";
}

}  // namespace

std::string RenderTable1MitigationMatrix() {
  TextTable t;
  std::vector<std::string> header = {"Attack / Mitigation"};
  for (Uarch u : AllUarches()) {
    header.push_back(UarchName(u));
  }
  t.SetHeader(header);

  struct Row {
    std::string label;
    std::function<std::string(const CpuModel&, const MitigationConfig&)> cell;
  };
  const std::vector<Row> rows = {
      {"Meltdown: Page Table Isolation",
       [](const CpuModel&, const MitigationConfig& c) { return Check(c.pti); }},
      {"L1TF: PTE Inversion",
       [](const CpuModel&, const MitigationConfig& c) { return Check(c.l1tf_pte_inversion); }},
      {"L1TF: Flush L1 Cache",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.l1d_flush_on_vmentry);
       }},
      {"LazyFP: Always save FPU",
       [](const CpuModel&, const MitigationConfig& c) { return Check(c.eager_fpu); }},
      {"Spectre V1: Index Masking",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.kernel_index_masking);
       }},
      {"Spectre V1: lfence after swapgs",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.lfence_after_swapgs);
       }},
      {"Spectre V2: Generic Retpoline",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.retpoline == RetpolineMode::kGeneric);
       }},
      {"Spectre V2: AMD Retpoline",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.retpoline == RetpolineMode::kAmd);
       }},
      {"Spectre V2: Enhanced IBRS",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.ibrs == IbrsMode::kEibrs);
       }},
      {"Spectre V2: RSB Stuffing",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.rsb_stuff_on_context_switch);
       }},
      {"Spectre V2: IBPB",
       [](const CpuModel&, const MitigationConfig& c) {
         return Check(c.ibpb_on_context_switch);
       }},
      {"Spec. Store Bypass: SSBD",
       [](const CpuModel&, const MitigationConfig& c) {
         return c.ssbd == SsbdMode::kOff ? std::string("") : std::string("!");
       }},
      {"MDS: Flush CPU Buffers",
       [](const CpuModel&, const MitigationConfig& c) { return Check(c.mds_clear_buffers); }},
      {"MDS: Disable SMT",
       [](const CpuModel& cpu, const MitigationConfig& c) {
         if (!cpu.vuln.mds) {
           return std::string("");
         }
         return c.smt_off ? std::string("yes") : std::string("!");
       }},
  };
  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (Uarch u : AllUarches()) {
      const CpuModel& cpu = GetCpuModel(u);
      cells.push_back(row.cell(cpu, MitigationConfig::Defaults(cpu)));
    }
    t.AddRow(cells);
  }
  std::ostringstream out;
  out << "Table 1. Default mitigations used by the simulated kernel on each processor.\n"
      << "('yes' = enabled by default; '!' = needed but not enabled by default;\n"
      << " blank = not required on this CPU.)\n\n"
      << t.Render();
  return out.str();
}

std::string RenderTable2CpuInfo() {
  TextTable t;
  t.SetHeader({"Vendor", "Model", "Microarchitecture", "Power (W)", "Clock (GHz)", "Cores",
               "SMT"});
  for (Uarch u : AllUarches()) {
    const CpuModel& cpu = GetCpuModel(u);
    t.AddRow({VendorName(cpu.vendor), cpu.model_name, cpu.uarch_name,
              std::to_string(cpu.power_watts), FormatDouble(cpu.clock_ghz, 2),
              std::to_string(cpu.cores), cpu.smt ? "2-way" : "no"});
  }
  return "Table 2. The CPUs the simulator models.\n\n" + t.Render();
}

// RunFigure2LeBench / RunFigure3Octane / RunSection45Parsec live in
// sweep_grids.cc: their cell grids are registered with the deterministic
// parallel runner instead of looping serially here.

std::string RenderFigure2(const std::vector<AttributionReport>& reports) {
  std::vector<Bar> bars;
  for (const AttributionReport& report : reports) {
    Bar bar;
    bar.label = report.cpu;
    bar.error = report.total_overhead_pct.ci95;
    for (const AttributionSegment& segment : report.segments) {
      if (segment.overhead_pct.value > 0.05) {
        bar.segments.push_back(BarSegment{segment.label, segment.overhead_pct.value});
      }
    }
    bars.push_back(bar);
  }
  return RenderBarChart(
      "Figure 2. Overhead of mitigations on the LEBench suite (per-mitigation stack)", bars);
}

std::string RenderAttributionCsv(const std::vector<AttributionReport>& reports) {
  std::vector<std::vector<std::string>> rows;
  for (const AttributionReport& report : reports) {
    for (const AttributionSegment& segment : report.segments) {
      rows.push_back({report.cpu, report.workload, segment.id,
                      FormatDouble(segment.overhead_pct.value, 3),
                      FormatDouble(segment.overhead_pct.ci95, 3)});
    }
    rows.push_back({report.cpu, report.workload, "TOTAL",
                    FormatDouble(report.total_overhead_pct.value, 3),
                    FormatDouble(report.total_overhead_pct.ci95, 3)});
  }
  return RenderCsv({"cpu", "workload", "mitigation", "overhead_pct", "ci95"}, rows);
}

std::string RenderFigure3(const std::vector<AttributionReport>& reports) {
  std::vector<Bar> bars;
  for (const AttributionReport& report : reports) {
    Bar bar;
    bar.label = report.cpu;
    bar.error = report.total_overhead_pct.ci95;
    for (const AttributionSegment& segment : report.segments) {
      if (segment.overhead_pct.value > 0.05) {
        bar.segments.push_back(BarSegment{segment.label, segment.overhead_pct.value});
      }
    }
    bars.push_back(bar);
  }
  return RenderBarChart(
      "Figure 3. Slowdown on the Octane 2 suite from JavaScript and OS mitigations", bars);
}

namespace {

// Guest workload for the LEBench-in-VM experiment: a syscall-heavy loop with
// an occasional device interaction (the timer/virtio activity real guests
// have), so host mitigations act only on the rare exits.
double RunGuestLeBenchLike(const CpuModel& cpu, const HostConfig& host, uint64_t seed) {
  MitigationConfig guest_config = MitigationConfig::Defaults(cpu);
  Kernel kernel(cpu, guest_config);
  Hypervisor hv(kernel, host);
  ProgramBuilder& b = kernel.builder();
  b.BindSymbol("guest_main");
  Label outer = b.NewLabel();
  Label inner = b.NewLabel();
  b.MovImm(3, 8);  // outer chunks
  b.Bind(outer);
  b.MovImm(4, 16);  // syscalls per chunk
  b.Bind(inner);
  kernel.EmitSyscall(b, Sys::kGetpid);
  b.AluImm(AluOp::kSub, 4, 4, 1);
  b.BranchNz(4, inner);
  // One device I/O per chunk (timer tick / virtio kick).
  b.MovImm(0, static_cast<int64_t>(kUserDataVaddr));
  b.MovImm(1, 512);
  b.MovImm(2, 0);
  kernel.EmitSyscall(b, kSysDiskIo);
  b.AluImm(AluOp::kSub, 3, 3, 1);
  b.BranchNz(3, outer);
  b.Halt();
  kernel.Finalize();
  const auto result = kernel.Run("guest_main");
  return ApplyNoise(static_cast<double>(result.cycles), seed, 0.012);
}

}  // namespace

std::vector<VmWorkloadResult> RunSection44Vm(const SamplerOptions& options,
                                             const std::vector<Uarch>& cpus) {
  std::vector<VmWorkloadResult> results;
  for (Uarch u : cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    const HostConfig host_on = HostConfig::Defaults(cpu);
    const HostConfig host_off = HostConfig::AllOff();

    // LEBench-like guest.
    {
      uint64_t seed_on = 100;
      uint64_t seed_off = 5100;
      const Estimate on = SampleUntilConverged(
                              [&] { return RunGuestLeBenchLike(cpu, host_on, seed_on++); },
                              options)
                              .estimate;
      const Estimate off = SampleUntilConverged(
                               [&] { return RunGuestLeBenchLike(cpu, host_off, seed_off++); },
                               options)
                               .estimate;
      VmWorkloadResult r;
      r.cpu = UarchName(u);
      r.workload = "lebench-in-vm";
      r.overhead_pct = RelativeOverheadPercent(on, off);
      results.push_back(r);
    }

    // LFS smallfile / largefile against the emulated disk.
    for (const std::string& name : Lfs::KernelNames()) {
      uint64_t seed_on = 200;
      uint64_t seed_off = 7200;
      uint64_t exits = 0;
      const Estimate on =
          SampleUntilConverged(
              [&] {
                const LfsResult lfs = Lfs::RunKernel(name, cpu, MitigationConfig::Defaults(cpu),
                                                     host_on, seed_on++);
                exits = lfs.vm_exits;
                return lfs.cycles;
              },
              options)
              .estimate;
      const Estimate off =
          SampleUntilConverged(
              [&] {
                return Lfs::RunKernel(name, cpu, MitigationConfig::Defaults(cpu), host_off,
                                      seed_off++)
                    .cycles;
              },
              options)
              .estimate;
      VmWorkloadResult r;
      r.cpu = UarchName(u);
      r.workload = "lfs-" + name;
      r.overhead_pct = RelativeOverheadPercent(on, off);
      r.vm_exits_protected = exits;
      results.push_back(r);
    }
  }
  return results;
}

std::string RenderSection44(const std::vector<VmWorkloadResult>& results) {
  TextTable t;
  t.SetHeader({"CPU", "Workload", "Host-mitigation overhead", "95% CI", "VM exits"});
  for (const VmWorkloadResult& r : results) {
    t.AddRow({r.cpu, r.workload, FormatPercent(r.overhead_pct.value),
              "+/-" + FormatPercent(r.overhead_pct.ci95),
              r.vm_exits_protected != 0 ? std::to_string(r.vm_exits_protected) : ""});
  }
  return "Section 4.4. Virtual machine workloads: host mitigations on vs off.\n"
         "(Paper: LEBench-in-VM within +/-3%; LFS small/largefile ~<2% median,\n"
         " high run-to-run variability.)\n\n" +
         t.Render();
}

std::string RenderSection45(const std::vector<ParsecDefaultResult>& results) {
  TextTable t;
  t.SetHeader({"CPU", "Kernel", "Default-mitigation overhead", "95% CI"});
  for (const ParsecDefaultResult& r : results) {
    t.AddRow({r.cpu, r.kernel, FormatPercent(r.overhead_pct.value, 2),
              "+/-" + FormatPercent(r.overhead_pct.ci95, 2)});
  }
  return "Section 4.5. PARSEC kernels under default mitigations.\n"
         "(Paper: usually within +/-0.5%, never more than 2%.)\n\n" +
         t.Render();
}

std::string RenderTable3EntryExit() {
  TextTable t;
  t.SetHeader({"CPU", "syscall", "paper", "sysret", "paper", "swap cr3", "paper"});
  for (Uarch u : AllUarches()) {
    const EntryExitCosts costs = MeasureEntryExit(GetCpuModel(u));
    const PaperTable3Row paper = PaperTable3(u);
    t.AddRow({UarchName(u), FormatCycles(costs.syscall), FormatCycles(paper.syscall),
              FormatCycles(costs.sysret), FormatCycles(paper.sysret),
              GetCpuModel(u).vuln.meltdown ? FormatCycles(costs.swap_cr3) : "N/A",
              OptStr(paper.swap_cr3)});
  }
  return "Table 3. Cycles for syscall / sysret and (on vulnerable parts) the PTI\n"
         "page-table swap. 'paper' columns are the published measurements.\n\n" +
         t.Render();
}

std::string RenderTable4Verw() {
  TextTable t;
  t.SetHeader({"Vendor", "CPU", "verw cycles", "paper"});
  for (Uarch u : AllUarches()) {
    const CpuModel& cpu = GetCpuModel(u);
    const double measured = MeasureVerw(cpu);
    t.AddRow({VendorName(cpu.vendor), UarchName(u),
              cpu.vuln.mds ? FormatCycles(measured) : "N/A (" + FormatCycles(measured) + ")",
              OptStr(PaperTable4(u))});
  }
  return "Table 4. Cycles to clear microarchitectural buffers with verw. On parts\n"
         "that are not MDS-vulnerable, verw retains only its cheap legacy behaviour\n"
         "(shown in parentheses).\n\n" +
         t.Render();
}

std::string RenderTable5IndirectBranch() {
  TextTable t;
  t.SetHeader({"CPU", "Baseline", "paper", "IBRS", "paper", "Generic", "paper", "AMD",
               "paper"});
  for (Uarch u : AllUarches()) {
    const IndirectBranchCosts costs = MeasureIndirectBranch(GetCpuModel(u));
    const PaperTable5Row paper = PaperTable5(u);
    auto delta = [&](double value) {
      return value < 0 ? std::string("N/A") : "+" + FormatCycles(value - costs.baseline);
    };
    auto paper_delta = [](const std::optional<double>& value) {
      return value.has_value() ? "+" + FormatCycles(*value) : std::string("N/A");
    };
    t.AddRow({UarchName(u), FormatCycles(costs.baseline), FormatCycles(paper.baseline),
              delta(costs.ibrs), paper_delta(paper.ibrs_delta), delta(costs.generic_retpoline),
              "+" + FormatCycles(paper.generic_delta), delta(costs.amd_retpoline),
              paper_delta(paper.amd_delta)});
  }
  return "Table 5. Cycles for an indirect branch: baseline, then deltas with IBRS,\n"
         "generic retpolines, and AMD (lfence) retpolines.\n\n" +
         t.Render();
}

std::string RenderTable6Ibpb() {
  TextTable t;
  t.SetHeader({"Vendor", "CPU", "IBPB cycles", "paper"});
  for (Uarch u : AllUarches()) {
    const CpuModel& cpu = GetCpuModel(u);
    t.AddRow({VendorName(cpu.vendor), UarchName(u), FormatCycles(MeasureIbpb(cpu)),
              FormatCycles(PaperTable6Ibpb(u))});
  }
  return "Table 6. Cycles for an indirect branch prediction barrier.\n\n" + t.Render();
}

std::string RenderTable7RsbStuff() {
  TextTable t;
  t.SetHeader({"Vendor", "CPU", "RSB fill cycles", "paper"});
  for (Uarch u : AllUarches()) {
    const CpuModel& cpu = GetCpuModel(u);
    t.AddRow({VendorName(cpu.vendor), UarchName(u), FormatCycles(MeasureRsbStuff(cpu)),
              FormatCycles(PaperTable7RsbStuff(u))});
  }
  return "Table 7. Cycles to stuff the RSB.\n\n" + t.Render();
}

std::string RenderTable8Lfence() {
  TextTable t;
  t.SetHeader({"Vendor", "CPU", "lfence cycles", "paper"});
  for (Uarch u : AllUarches()) {
    const CpuModel& cpu = GetCpuModel(u);
    t.AddRow({VendorName(cpu.vendor), UarchName(u), FormatCycles(MeasureLfence(cpu)),
              FormatCycles(PaperTable8Lfence(u))});
  }
  return "Table 8. Cycles for a single lfence in a loop.\n\n" + t.Render();
}

std::vector<Fig5Row> RunFigure5Ssbd(const std::vector<Uarch>& cpus) {
  std::vector<Fig5Row> rows;
  for (Uarch u : cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    MitigationConfig ssbd = MitigationConfig::AllOff();
    ssbd.ssbd = SsbdMode::kAlways;
    Fig5Row row;
    row.cpu = UarchName(u);
    auto slowdown = [&](const std::string& name) {
      const double off = Parsec::RunKernel(name, cpu, MitigationConfig::AllOff(), 41);
      const double on = Parsec::RunKernel(name, cpu, ssbd, 42);
      return (on / off - 1.0) * 100.0;
    };
    row.swaptions_pct = slowdown("swaptions");
    row.facesim_pct = slowdown("facesim");
    row.bodytrack_pct = slowdown("bodytrack");
    rows.push_back(row);
  }
  return rows;
}

std::string RenderFigure5(const std::vector<Fig5Row>& rows) {
  std::vector<Bar> bars;
  for (const Fig5Row& row : rows) {
    bars.push_back(Bar{row.cpu + " swaptions", {{"swaptions", row.swaptions_pct}}, 0});
    bars.push_back(Bar{row.cpu + " facesim", {{"facesim", row.facesim_pct}}, 0});
    bars.push_back(Bar{row.cpu + " bodytrack", {{"bodytrack", row.bodytrack_pct}}, 0});
  }
  return RenderBarChart(
      "Figure 5. Slowdown from force-enabling Speculative Store Bypass Disable\n"
      "on the PARSEC kernels (paper: up to ~34%, trending worse on newer parts)",
      bars);
}

std::string RenderTables9And10() {
  std::ostringstream out;
  for (bool ibrs : {false, true}) {
    TextTable t;
    std::vector<std::string> header = {"CPU"};
    for (const ProbeCase& c : Table9Columns(ibrs)) {
      header.push_back(ProbeCaseName(c));
    }
    t.SetHeader(header);
    for (Uarch u : AllUarches()) {
      SpeculationProbe probe(GetCpuModel(u));
      std::vector<std::string> cells = {UarchName(u)};
      for (const ProbeCase& c : Table9Columns(ibrs)) {
        const ProbeOutcome outcome = probe.Run(c);
        cells.push_back(outcome == ProbeOutcome::kSpeculated
                            ? "yes"
                            : (outcome == ProbeOutcome::kUnsupported ? "N/A" : ""));
      }
      t.AddRow(cells);
    }
    out << (ibrs ? "Table 10. Same, with IBRS *enabled*.\n"
                 : "Table 9. Whether a BTB entry trained in mode X steers speculation of a\n"
                   "victim indirect branch in mode Y, IBRS disabled ('yes' = divider PMC\n"
                   "observed transient execution at the trained target).\n")
        << "\n"
        << t.Render() << "\n";
  }
  // The Zen 3 control experiment from §6.2.
  SpeculationProbe zen3(GetCpuModel(Uarch::kZen3));
  out << "Zen 3 same-call-site control (train and probe share a caller context): "
      << ProbeOutcomeName(zen3.RunSameSiteControl()) << "\n";
  return out.str();
}

std::string RenderEibrsBimodal() {
  std::ostringstream out;
  out << "Section 6.2.2. Kernel-entry latency distribution with eIBRS: most\n"
         "entries are fast, but every Nth entry pays ~210 extra cycles while the\n"
         "kernel predictor state is scrubbed.\n\n";
  for (Uarch u : {Uarch::kCascadeLake, Uarch::kIceLakeClient, Uarch::kIceLakeServer}) {
    const CpuModel& cpu = GetCpuModel(u);
    Machine m(cpu);
    m.SetIbrs(true);
    m.SetReg(kRegSp, 0x70000000);
    ProgramBuilder b;
    Label entry = b.NewLabel();
    b.Syscall();
    b.Halt();
    b.Bind(entry);
    b.Sysret();
    Program p = b.Build();
    m.LoadProgram(&p);
    m.SetSyscallEntry(p.VaddrOf(2));
    uint64_t fast = 0;
    uint64_t slow = 0;
    double fast_sum = 0;
    double slow_sum = 0;
    for (int i = 0; i < 200; i++) {
      const uint64_t before = m.cycles();
      m.Run(p.VaddrOf(0));
      const uint64_t cost = m.cycles() - before;
      if (cost > cpu.latency.syscall + cpu.latency.sysret + 100) {
        slow++;
        slow_sum += static_cast<double>(cost);
      } else {
        fast++;
        fast_sum += static_cast<double>(cost);
      }
    }
    out << UarchName(u) << ": " << fast << " fast entries (avg "
        << FormatCycles(fast ? fast_sum / static_cast<double>(fast) : 0) << " cyc), " << slow
        << " slow entries (avg "
        << FormatCycles(slow ? slow_sum / static_cast<double>(slow) : 0)
        << " cyc); every " << (slow != 0 ? 200 / slow : 0) << "th entry is slow\n";
  }
  return out.str();
}

}  // namespace specbench
