#include "src/core/counters.h"

#include <sstream>

#include "src/util/check.h"
#include "src/workload/lebench.h"
#include "src/workload/octane.h"

namespace specbench {

namespace {

CounterBreakdown FoldWindow(const CpuModel& cpu, const std::string& workload,
                            const CycleAttribution& sink) {
  SPECBENCH_CHECK_MSG(sink.HasWindow(), "workload did not bracket a measurement window");
  CounterBreakdown row;
  row.cpu = UarchName(cpu.uarch);
  row.workload = workload;
  row.window_cycles = sink.WindowTotalCycles();
  uint64_t sum = 0;
  for (size_t i = 0; i < kNumCauseTags; i++) {
    row.cause_cycles[i] = sink.WindowCauseCycles(static_cast<CauseTag>(i));
    sum += row.cause_cycles[i];
  }
  // The accounting identity: every in-window cycle is charged to exactly one
  // cause (machine.cc Step epilogue), so the buckets partition the window.
  SPECBENCH_CHECK_MSG(sum == row.window_cycles, "cause buckets do not partition the window");
  row.retired = sink.retired();
  row.episodes = sink.episodes();
  row.cache_fills = sink.cache_fills();
  row.fill_buffer_touches = sink.fill_buffer_touches();
  row.tlb_flushes = sink.tlb_flushes();
  row.store_buffer_drains = sink.store_buffer_drains();
  return row;
}

}  // namespace

double CounterBreakdown::OverheadPct(CauseTag tag) const {
  const uint64_t base = baseline_cycles();
  if (base == 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(Cause(tag)) / static_cast<double>(base);
}

double CounterBreakdown::TotalOverheadPct() const {
  const uint64_t base = baseline_cycles();
  if (base == 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(window_cycles - base) / static_cast<double>(base);
}

CounterBreakdown MeasureLeBenchCounters(const CpuModel& cpu, const MitigationConfig& config,
                                        const std::string& kernel) {
  CycleAttribution sink;
  LeBench::RunKernel(kernel, cpu, config, /*seed=*/1, &sink);
  return FoldWindow(cpu, "lebench:" + kernel, sink);
}

CounterBreakdown MeasureOctaneCounters(const CpuModel& cpu, const JitConfig& jit_config,
                                       const MitigationConfig& os_config,
                                       const std::string& kernel) {
  CycleAttribution sink;
  Octane::RunKernel(kernel, cpu, jit_config, os_config, /*seed=*/1, &sink);
  return FoldWindow(cpu, "octane:" + kernel, sink);
}

std::string RenderCountersJson(const std::vector<CounterBreakdown>& rows) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"spectrebench-counters-v1\",\n  \"results\": [";
  for (size_t r = 0; r < rows.size(); r++) {
    const CounterBreakdown& row = rows[r];
    out << (r == 0 ? "" : ",") << "\n    {\n";
    out << "      \"cpu\": \"" << row.cpu << "\",\n";
    out << "      \"workload\": \"" << row.workload << "\",\n";
    out << "      \"window_cycles\": " << row.window_cycles << ",\n";
    out << "      \"causes\": {";
    for (size_t i = 0; i < kNumCauseTags; i++) {
      out << (i == 0 ? "" : ",") << "\n        \"" << CauseTagName(static_cast<CauseTag>(i))
          << "\": " << row.cause_cycles[i];
    }
    out << "\n      },\n";
    out << "      \"events\": {\n";
    out << "        \"retired\": " << row.retired << ",\n";
    out << "        \"episodes\": " << row.episodes << ",\n";
    out << "        \"cache_fills\": " << row.cache_fills << ",\n";
    out << "        \"fill_buffer_touches\": " << row.fill_buffer_touches << ",\n";
    out << "        \"tlb_flushes\": " << row.tlb_flushes << ",\n";
    out << "        \"store_buffer_drains\": " << row.store_buffer_drains << "\n";
    out << "      }\n    }";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace specbench
