#include "src/core/pareto.h"

#include <cstdio>
#include <sstream>

#include "src/core/counters.h"
#include "src/jit/jit.h"
#include "src/runner/thread_pool.h"
#include "src/util/check.h"
#include "src/workload/parsec.h"

namespace specbench {

namespace {

// Fixed-precision decimal for the byte-stable renderers.
std::string Fixed4(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

// Geometric mean of positive ratios without libm: product, then an n-th
// root by a fixed number of Newton steps. Only IEEE-exact operations
// (+,-,*,/), so the result is bit-identical on every conforming platform —
// pow()/exp()/log() are not correctly rounded and could shift a golden
// file's last digit between libm versions.
double GeomeanRatio(const std::vector<double>& ratios) {
  SPECBENCH_CHECK(!ratios.empty());
  double product = 1.0;
  for (double r : ratios) {
    SPECBENCH_CHECK(r > 0.0);
    product *= r;
  }
  const int n = static_cast<int>(ratios.size());
  if (n == 1) {
    return product;
  }
  double x = 1.0 + (product - 1.0) / n;  // first-order guess, exact ops only
  for (int iter = 0; iter < 64; iter++) {
    double xn1 = 1.0;  // x^(n-1)
    for (int i = 0; i < n - 1; i++) {
      xn1 *= x;
    }
    x = ((n - 1) * x + product / xn1) / n;
  }
  return x;
}

struct MeasuredCell {
  // One entry per ParetoWorkloads() element, in order.
  std::vector<double> cycles;
  std::array<uint64_t, kNumCauseTags> cause_cycles{};
};

MeasuredCell MeasureBasket(const CpuModel& cpu, const MitigationConfig& config) {
  MeasuredCell cell;
  for (const std::string& workload : ParetoWorkloads()) {
    const size_t colon = workload.find(':');
    const std::string suite = workload.substr(0, colon);
    const std::string kernel = workload.substr(colon + 1);
    if (suite == "lebench") {
      const CounterBreakdown row = MeasureLeBenchCounters(cpu, config, kernel);
      cell.cycles.push_back(static_cast<double>(row.window_cycles));
      for (size_t i = 0; i < kNumCauseTags; i++) {
        cell.cause_cycles[i] += row.cause_cycles[i];
      }
    } else if (suite == "octane") {
      const CounterBreakdown row = MeasureOctaneCounters(cpu, JitConfig::AllOn(), config, kernel);
      cell.cycles.push_back(static_cast<double>(row.window_cycles));
      for (size_t i = 0; i < kNumCauseTags; i++) {
        cell.cause_cycles[i] += row.cause_cycles[i];
      }
    } else {
      SPECBENCH_CHECK_MSG(suite == "parsec", "unknown pareto workload suite");
      cell.cycles.push_back(Parsec::RunKernel(kernel, cpu, config, /*seed=*/1));
    }
  }
  return cell;
}

}  // namespace

const std::vector<std::string>& ParetoWorkloads() {
  // LEBench prices the boundary-crossing knobs (PTI, verw, IBPB/RSB, IBRS),
  // Octane the JIT-visible ones, PARSEC the compute-side ones the syscall
  // benchmarks cannot see (SSBD store-queue discipline, the nosmt
  // throughput yield).
  static const std::vector<std::string> kWorkloads = {
      "lebench:getpid", "lebench:context-switch", "octane:richards",
      "parsec:swaptions", "parsec:facesim",
  };
  return kWorkloads;
}

ParetoReport BuildParetoReport(const ParetoOptions& options) {
  ParetoReport report;

  SuiteOptions suite_options;
  suite_options.cpus = options.cpus;
  suite_options.trials = options.trials;
  suite_options.jobs = options.jobs;
  suite_options.base_seed = options.base_seed;
  report.suite = RunSuite(suite_options);

  const std::vector<AttackSpec>& suite = AttackSuite();

  // Overhead basket: one pooled task per (cpu, config) cell, each writing
  // its own slot — same determinism recipe as the attack matrix.
  struct MeasureJob {
    const CpuModel* cpu;
    MitigationConfig config;
    size_t slot;
  };
  std::vector<MeasureJob> jobs;
  std::vector<MeasuredCell> measured;
  std::vector<std::vector<NamedConfig>> matrices;
  for (Uarch u : options.cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    matrices.push_back(MitigationConfigMatrix(cpu));
    for (const NamedConfig& named : matrices.back()) {
      jobs.push_back(MeasureJob{&cpu, named.config, measured.size()});
      measured.emplace_back();
    }
  }
  {
    ThreadPool pool(options.jobs == 0 ? 0 : static_cast<size_t>(options.jobs));
    for (const MeasureJob& job : jobs) {
      MeasuredCell* slot = &measured[job.slot];
      pool.Submit([slot, job] { *slot = MeasureBasket(*job.cpu, job.config); });
    }
    pool.Wait();
  }

  size_t cell_index = 0;
  for (size_t c = 0; c < options.cpus.size(); c++) {
    const CpuModel& cpu = GetCpuModel(options.cpus[c]);
    const std::vector<NamedConfig>& matrix = matrices[c];

    CpuPareto row;
    row.cpu = UarchName(options.cpus[c]);

    // The "off" row is the overhead baseline for every config of this CPU.
    const MeasuredCell& baseline = measured[cell_index];
    SPECBENCH_CHECK(matrix[0].name == "off");

    for (size_t k = 0; k < matrix.size(); k++) {
      const NamedConfig& named = matrix[k];
      const MeasuredCell& cell = measured[cell_index++];

      ConfigEvaluation eval;
      eval.config = named.name;
      eval.cause_cycles = cell.cause_cycles;

      std::vector<double> ratios;
      for (size_t w = 0; w < cell.cycles.size(); w++) {
        ratios.push_back(cell.cycles[w] / baseline.cycles[w]);
      }
      eval.overhead_pct = (GeomeanRatio(ratios) - 1.0) * 100.0;

      for (const AttackSpec& spec : suite) {
        if (spec.defended(cpu, named.config)) {
          eval.claims++;
        }
        const SuiteCell* verdict = report.suite.Find(row.cpu, named.name, spec.name);
        SPECBENCH_CHECK(verdict != nullptr);
        if (verdict->attempted) {
          eval.attempted++;
          if (verdict->leaks == 0) {
            eval.protected_count++;
          }
        }
      }
      eval.fully_protected = eval.protected_count == eval.attempted;
      row.configs.push_back(std::move(eval));
    }

    // Frontier: non-dominated in (protection, overhead).
    for (size_t i = 0; i < row.configs.size(); i++) {
      bool dominated = false;
      for (size_t j = 0; j < row.configs.size() && !dominated; j++) {
        if (i == j) {
          continue;
        }
        const ConfigEvaluation& a = row.configs[i];
        const ConfigEvaluation& b = row.configs[j];
        if (b.protected_count >= a.protected_count && b.overhead_pct <= a.overhead_pct &&
            (b.protected_count > a.protected_count || b.overhead_pct < a.overhead_pct)) {
          dominated = true;
        }
      }
      row.configs[i].on_frontier = !dominated;
    }

    // Cheapest sufficient vs most protected; ties toward earlier
    // registration in both cases.
    int best_claims = -1;
    double cheapest = 0.0;
    double most_protected_cost = 0.0;
    for (const ConfigEvaluation& eval : row.configs) {
      if (eval.fully_protected &&
          (row.cheapest_sufficient.empty() || eval.overhead_pct < cheapest)) {
        row.cheapest_sufficient = eval.config;
        cheapest = eval.overhead_pct;
      }
      if (eval.claims > best_claims) {
        best_claims = eval.claims;
        row.most_protected = eval.config;
        most_protected_cost = eval.overhead_pct;
      }
    }
    if (!row.cheapest_sufficient.empty()) {
      row.over_protection_gap_pct = most_protected_cost - cheapest;
    }

    // Which knob saved you: attribution against the cheapest sufficient
    // config's defended() claims.
    if (!row.cheapest_sufficient.empty()) {
      const MitigationConfig* chosen = nullptr;
      for (const NamedConfig& named : matrix) {
        if (named.name == row.cheapest_sufficient) {
          chosen = &named.config;
        }
      }
      SPECBENCH_CHECK(chosen != nullptr);
      for (const AttackSpec& spec : suite) {
        if (!spec.vulnerable(cpu) || !spec.defended(cpu, *chosen)) {
          continue;
        }
        AttackAttribution attribution;
        attribution.attack = spec.name;
        for (SuiteKnob knob : spec.knobs) {
          if (!KnobActive(*chosen, knob)) {
            continue;
          }
          if (!spec.defended(cpu, WithKnobDisabled(*chosen, knob))) {
            attribution.critical_knobs.push_back(SuiteKnobName(knob));
          } else {
            attribution.redundant_knobs.push_back(SuiteKnobName(knob));
          }
        }
        row.attributions.push_back(std::move(attribution));
      }
    }

    report.cpus.push_back(std::move(row));
  }
  return report;
}

std::string RenderParetoText(const ParetoReport& report) {
  std::ostringstream out;
  out << "Security x overhead frontier (" << report.suite.options.trials
      << " trials per attack cell, leak threshold: any trial)\n";
  for (const CpuPareto& cpu : report.cpus) {
    out << "\n== " << cpu.cpu << " ==\n";
    char line[160];
    std::snprintf(line, sizeof(line), "  %-20s %10s %10s %7s  %s\n", "config", "overhead%",
                  "protected", "claims", "frontier");
    out << line;
    for (const ConfigEvaluation& eval : cpu.configs) {
      std::string protection = std::to_string(eval.protected_count) + "/" +
                               std::to_string(eval.attempted);
      std::snprintf(line, sizeof(line), "  %-20s %10s %10s %7d  %s\n", eval.config.c_str(),
                    Fixed4(eval.overhead_pct).c_str(), protection.c_str(), eval.claims,
                    eval.on_frontier ? "*" : "");
      out << line;
    }
    if (cpu.cheapest_sufficient.empty()) {
      out << "  cheapest sufficient: none on this axis\n";
    } else {
      out << "  cheapest sufficient: " << cpu.cheapest_sufficient << "\n";
      out << "  most protected:      " << cpu.most_protected << "\n";
      out << "  over-protection gap: " << Fixed4(cpu.over_protection_gap_pct) << "%\n";
      out << "  which knob saved you (" << cpu.cheapest_sufficient << "):\n";
      for (const AttackAttribution& attribution : cpu.attributions) {
        out << "    " << attribution.attack << ":";
        for (const std::string& knob : attribution.critical_knobs) {
          out << " " << knob;
        }
        if (!attribution.redundant_knobs.empty()) {
          out << " (redundant:";
          for (const std::string& knob : attribution.redundant_knobs) {
            out << " " << knob;
          }
          out << ")";
        }
        out << "\n";
      }
    }
  }
  return out.str();
}

std::string RenderParetoJson(const ParetoReport& report) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"spectrebench-pareto-v1\",\n";
  out << "  \"trials\": " << report.suite.options.trials << ",\n";
  out << "  \"seed\": " << report.suite.options.base_seed << ",\n";
  out << "  \"workloads\": [";
  const std::vector<std::string>& workloads = ParetoWorkloads();
  for (size_t i = 0; i < workloads.size(); i++) {
    out << (i == 0 ? "" : ", ") << "\"" << workloads[i] << "\"";
  }
  out << "],\n  \"cpus\": [";
  for (size_t c = 0; c < report.cpus.size(); c++) {
    const CpuPareto& cpu = report.cpus[c];
    out << (c == 0 ? "" : ",") << "\n    {\n";
    out << "      \"cpu\": \"" << cpu.cpu << "\",\n";
    out << "      \"configs\": [";
    for (size_t k = 0; k < cpu.configs.size(); k++) {
      const ConfigEvaluation& eval = cpu.configs[k];
      out << (k == 0 ? "" : ",") << "\n        {\n";
      out << "          \"config\": \"" << eval.config << "\",\n";
      out << "          \"overhead_pct\": " << Fixed4(eval.overhead_pct) << ",\n";
      out << "          \"attempted\": " << eval.attempted << ",\n";
      out << "          \"protected\": " << eval.protected_count << ",\n";
      out << "          \"fully_protected\": " << (eval.fully_protected ? "true" : "false")
          << ",\n";
      out << "          \"claims\": " << eval.claims << ",\n";
      out << "          \"on_frontier\": " << (eval.on_frontier ? "true" : "false") << ",\n";
      out << "          \"causes\": {";
      for (size_t i = 0; i < kNumCauseTags; i++) {
        out << (i == 0 ? "" : ",") << "\n            \""
            << CauseTagName(static_cast<CauseTag>(i)) << "\": " << eval.cause_cycles[i];
      }
      out << "\n          }\n        }";
    }
    out << "\n      ],\n";
    out << "      \"cheapest_sufficient\": \"" << cpu.cheapest_sufficient << "\",\n";
    out << "      \"most_protected\": \"" << cpu.most_protected << "\",\n";
    out << "      \"over_protection_gap_pct\": " << Fixed4(cpu.over_protection_gap_pct)
        << ",\n";
    out << "      \"attribution\": [";
    for (size_t a = 0; a < cpu.attributions.size(); a++) {
      const AttackAttribution& attribution = cpu.attributions[a];
      out << (a == 0 ? "" : ",") << "\n        {\"attack\": \"" << attribution.attack
          << "\", \"critical\": [";
      for (size_t i = 0; i < attribution.critical_knobs.size(); i++) {
        out << (i == 0 ? "" : ", ") << "\"" << attribution.critical_knobs[i] << "\"";
      }
      out << "], \"redundant\": [";
      for (size_t i = 0; i < attribution.redundant_knobs.size(); i++) {
        out << (i == 0 ? "" : ", ") << "\"" << attribution.redundant_knobs[i] << "\"";
      }
      out << "]}";
    }
    out << (cpu.attributions.empty() ? "" : "\n      ") << "],\n";
    out << "      \"matrix\": [";
    bool first_cell = true;
    for (const SuiteCell& cell : report.suite.cells) {
      if (cell.cpu != cpu.cpu) {
        continue;
      }
      out << (first_cell ? "" : ",") << "\n        {\"config\": \"" << cell.config
          << "\", \"attack\": \"" << cell.attack << "\", \"attempted\": "
          << (cell.attempted ? "true" : "false")
          << ", \"defended\": " << (cell.defended ? "true" : "false")
          << ", \"trials\": " << cell.trials << ", \"leaks\": " << cell.leaks
          << ", \"leak_rate\": " << Fixed4(cell.leak_rate) << "}";
      first_cell = false;
    }
    out << "\n      ]\n    }";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string RenderParetoCsv(const ParetoReport& report) {
  std::ostringstream out;
  out << "cpu,config,overhead_pct,protected,attempted,claims,fully_protected,on_frontier\n";
  for (const CpuPareto& cpu : report.cpus) {
    for (const ConfigEvaluation& eval : cpu.configs) {
      out << cpu.cpu << "," << eval.config << "," << Fixed4(eval.overhead_pct) << ","
          << eval.protected_count << "," << eval.attempted << "," << eval.claims << ","
          << (eval.fully_protected ? 1 : 0) << "," << (eval.on_frontier ? 1 : 0) << "\n";
    }
  }
  return out.str();
}

}  // namespace specbench
