#include "src/core/microbench.h"

#include <functional>

#include "src/isa/program.h"
#include "src/uarch/machine.h"
#include "src/util/check.h"

namespace specbench {

namespace {

constexpr uint64_t kStackTop = 0x70000000;
constexpr int kIterations = 512;

// Per-iteration cycles of a loop whose body is emitted by `emit` (may be
// empty), measured on a fresh machine.
double LoopCyclesPerIteration(const CpuModel& cpu,
                              const std::function<void(ProgramBuilder&)>& emit,
                              int iterations = kIterations) {
  Machine m(cpu);
  m.SetReg(kRegSp, kStackTop);
  ProgramBuilder b;
  Label loop = b.NewLabel();
  b.MovImm(0, iterations);
  b.Bind(loop);
  if (emit) {
    emit(b);
  }
  b.AluImm(AluOp::kSub, 0, 0, 1);
  b.BranchNz(0, loop);
  b.Halt();
  Program p = b.Build();
  m.LoadProgram(&p);
  const auto result = m.Run(p.VaddrOf(0));
  return static_cast<double>(result.cycles) / iterations;
}

// Loop body cost net of the bare loop.
double NetLoopCost(const CpuModel& cpu, const std::function<void(ProgramBuilder&)>& emit,
                   int iterations = kIterations) {
  const double with_body = LoopCyclesPerIteration(cpu, emit, iterations);
  const double empty = LoopCyclesPerIteration(cpu, nullptr, iterations);
  return with_body > empty ? with_body - empty : 0.0;
}

}  // namespace

EntryExitCosts MeasureEntryExit(const CpuModel& cpu) {
  // One program: the user loop timestamps around syscall; the kernel entry
  // timestamps before sysret; deltas accumulate in registers.
  //   r4: t before syscall      r7:  sum of (kernel t - t before syscall)
  //   r8: t before sysret       r12: sum of (user t - t before sysret)
  Machine m(cpu);
  m.SetReg(kRegSp, kStackTop);
  ProgramBuilder b;
  Label loop = b.NewLabel();
  b.BindSymbol("user");
  b.MovImm(0, kIterations);
  b.MovImm(7, 0);
  b.MovImm(12, 0);
  b.Bind(loop);
  b.Lfence();
  b.Rdtsc(4);
  b.Syscall();
  // Resumed here after sysret.
  b.Rdtsc(9);
  b.Alu(AluOp::kSub, 9, 9, 8);
  b.Alu(AluOp::kAdd, 12, 12, 9);
  b.AluImm(AluOp::kSub, 0, 0, 1);
  b.BranchNz(0, loop);
  b.Halt();
  b.BindSymbol("kentry");
  b.Rdtsc(5);
  b.Alu(AluOp::kSub, 5, 5, 4);
  b.Alu(AluOp::kAdd, 7, 7, 5);
  b.Rdtsc(8);
  b.Sysret();
  Program p = b.Build();
  m.LoadProgram(&p);
  m.SetSyscallEntry(p.SymbolVaddr("kentry"));
  m.Run(p.SymbolVaddr("user"));

  EntryExitCosts costs;
  const double rdtsc = cpu.latency.rdtsc;
  costs.syscall =
      static_cast<double>(m.reg(7)) / kIterations - rdtsc;
  costs.sysret = static_cast<double>(m.reg(12)) / kIterations - rdtsc;
  if (costs.syscall < 0) {
    costs.syscall = 0;
  }
  if (costs.sysret < 0) {
    costs.sysret = 0;
  }
  // Table 3 reports the cr3 swap only for Meltdown-vulnerable parts.
  if (cpu.vuln.meltdown) {
    costs.swap_cr3 = NetLoopCost(cpu, [](ProgramBuilder& pb) {
      pb.MovImm(9, 0);
      pb.MovCr3(9);
    });
  }
  return costs;
}

double MeasureVerw(const CpuModel& cpu) {
  return NetLoopCost(cpu, [](ProgramBuilder& pb) { pb.Verw(); });
}

IndirectBranchCosts MeasureIndirectBranch(const CpuModel& cpu) {
  // Shared scaffolding: a trivial callee, an indirect call through r11 (the
  // register convention of Figure 4), and retpoline thunks.
  enum class Variant { kDirect, kIndirect, kIbrs, kGenericRetpoline, kAmdRetpoline };

  auto measure = [&cpu](Variant variant) {
    Machine m(cpu);
    m.SetReg(kRegSp, kStackTop);
    if (variant == Variant::kIbrs) {
      m.SetIbrs(true);
    }
    ProgramBuilder b;
    Label fn = b.NewLabel();
    Label thunk = b.NewLabel();
    Label spin = b.NewLabel();
    Label setup = b.NewLabel();
    Label loop = b.NewLabel();
    Label start = b.NewLabel();
    b.Jmp(start);
    int32_t fn_index = b.NextIndex();
    b.Bind(fn);
    b.Ret();
    b.Bind(thunk);
    b.Call(setup);
    b.Bind(spin);
    b.Pause();
    b.Lfence();
    b.Jmp(spin);
    b.Bind(setup);
    b.Store(MemRef{.base = kRegSp}, 11);
    b.Ret();
    b.Bind(start);
    b.MovImm(0, kIterations);
    b.Bind(loop);
    switch (variant) {
      case Variant::kDirect:
        b.Call(fn);
        break;
      case Variant::kIndirect:
      case Variant::kIbrs:
        b.IndirectCall(11);
        break;
      case Variant::kGenericRetpoline:
        b.Call(thunk);
        break;
      case Variant::kAmdRetpoline:
        b.Lfence();
        b.IndirectCall(11);
        break;
    }
    b.AluImm(AluOp::kSub, 0, 0, 1);
    b.BranchNz(0, loop);
    b.Halt();
    Program p = b.Build();
    m.LoadProgram(&p);
    m.SetReg(11, p.VaddrOf(fn_index));
    const auto result = m.Run(p.VaddrOf(0));
    return static_cast<double>(result.cycles) / kIterations;
  };

  const double direct = measure(Variant::kDirect);
  IndirectBranchCosts costs;
  auto net = [&](Variant v) {
    const double value = measure(v) - direct;
    return value > 0 ? value : 0.0;
  };
  costs.baseline = net(Variant::kIndirect);
  costs.ibrs = cpu.predictor.ibrs_supported ? net(Variant::kIbrs) : -1.0;
  costs.generic_retpoline = net(Variant::kGenericRetpoline);
  costs.amd_retpoline = cpu.vendor == Vendor::kAmd ? net(Variant::kAmdRetpoline) : -1.0;
  return costs;
}

double MeasureIbpb(const CpuModel& cpu) {
  return NetLoopCost(
      cpu,
      [](ProgramBuilder& pb) {
        pb.MovImm(9, static_cast<int64_t>(kPredCmdIbpb));
        pb.Wrmsr(kMsrPredCmd, 9);
      },
      /*iterations=*/128);
}

double MeasureRsbStuff(const CpuModel& cpu) {
  return NetLoopCost(cpu, [](ProgramBuilder& pb) { pb.RsbStuff(); });
}

double MeasureLfence(const CpuModel& cpu) {
  return NetLoopCost(cpu, [](ProgramBuilder& pb) { pb.Lfence(); });
}

}  // namespace specbench
