// The simulated operating system kernel.
//
// The Kernel composes one machine program containing the workload's user
// code plus the kernel text it generates: the syscall entry/exit paths with
// every configured mitigation in its real place (the structure Linux uses),
// syscall handler bodies dispatched through an indirect branch protected per
// the Spectre V2 mode (plain / generic retpoline transcribed from the
// paper's Figure 4 / AMD lfence retpoline / IBRS), and the context-switch
// path (eager-FPU save, IBPB, RSB stuffing, cr3 switch).
//
// Register ABI:
//   r0..r2   syscall arguments / return value (r0)
//   r3..r7   user code locals (preserved: the kernel does not touch them)
//   r8..r14  kernel scratch (clobbered by any syscall)
//   r10      syscall number on entry
//   r15      stack pointer (shared user/kernel stack, like pre-PTI Linux)
#ifndef SPECTREBENCH_SRC_OS_KERNEL_H_
#define SPECTREBENCH_SRC_OS_KERNEL_H_

#include <array>
#include <cstdint>
#include <map>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cpu/cpu_model.h"
#include "src/isa/program.h"
#include "src/os/mitigation_config.h"
#include "src/os/paging.h"
#include "src/uarch/machine.h"

namespace specbench {

// --- Kernel virtual memory layout -----------------------------------------
// Kernel-only data mapped in *every* address space (the PTI trampoline).
inline constexpr uint64_t kSyscallTableVaddr = 0x80000000;
inline constexpr uint64_t kPercpuVaddr = 0x80001000;
// Kernel-only data mapped only in the kernel view under PTI.
inline constexpr uint64_t kKernelSecretVaddr = 0x80002000;
inline constexpr uint64_t kKernelHeapVaddr = 0x80100000;
inline constexpr uint64_t kKernelHeapBytes = 1 << 20;
// User regions.
inline constexpr uint64_t kUserStackTop = 0x7fff0000;
inline constexpr uint64_t kUserStackBytes = 64 * 1024;
inline constexpr uint64_t kUserDataVaddr = 0x10000000;
inline constexpr uint64_t kUserDataBytes = 16 << 20;
inline constexpr uint64_t kUserMmapBase = 0x20000000;
// Host/VMM data (emulated device buffers), mapped supervisor-only in every
// address space so the vmexit handler can run regardless of the guest cr3.
inline constexpr uint64_t kHostDataVaddr = 0x90000000;
inline constexpr uint64_t kHostDataBytes = 64 * 1024;

// Core-scheduling cookie comparison in pick_next_task, charged per context
// switch when core_scheduling is on (SMT parts only).
inline constexpr uint64_t kCoreSchedPickCycles = 120;

// Per-cpu slots (offsets from kPercpuVaddr).
inline constexpr uint64_t kPercpuKernelCr3 = 0;
inline constexpr uint64_t kPercpuUserCr3 = 8;
inline constexpr uint64_t kPercpuSpecCtrlEntry = 16;
inline constexpr uint64_t kPercpuSpecCtrlExit = 24;

// --- Syscalls ---------------------------------------------------------------
enum class Sys : int {
  kGetpid = 0,
  kYield = 1,
  kRead = 2,    // r0 = user buffer, r1 = bytes
  kWrite = 3,   // r0 = user buffer, r1 = bytes
  kMmap = 4,    // r0 = bytes; returns r0 = vaddr (demand paged)
  kMunmap = 5,  // r0 = vaddr
  kSend = 6,    // r0 = user buffer, r1 = bytes (copy into kernel queue)
  kRecv = 7,    // r0 = user buffer, r1 = bytes (copy out of kernel queue)
  kFork = 8,    // duplicate current process (model: clone address space)
  kThreadCreate = 9,
  kSelect = 10, // scan the fd table for readiness (r0 = nfds)
  kCustomBase = 16,
};
inline constexpr int kMaxSyscalls = 64;

struct Process {
  int pid = 0;
  uint64_t user_cr3 = 0;
  uint64_t kernel_cr3 = 0;
  uint64_t resume_rip = 0;
  // Saved stack pointer while the process is switched out. Fresh processes
  // get a fabricated frame whose return address is the syscall exit path.
  uint64_t saved_rsp = 0;
  bool uses_seccomp = false;   // SSBD applies under SsbdMode::kSeccomp
  bool ssbd_prctl = false;     // explicit prctl opt-in
  std::array<uint64_t, kNumFpRegs> fp_state{};
  uint64_t next_mmap_vaddr = kUserMmapBase;
  // Demand-paged VMAs created by mmap: start -> length.
  std::map<uint64_t, uint64_t> vmas;
};

class Kernel {
 public:
  Kernel(const CpuModel& cpu, const MitigationConfig& config);

  // --- Build phase ---------------------------------------------------------
  // The shared builder: workloads emit user code here before Finalize().
  ProgramBuilder& builder() { return builder_; }
  // Creates a process (the first one is the boot process, created
  // automatically). All build-phase only.
  Process& CreateProcess();
  // Registers a custom syscall handler body. The emitter must end its body
  // with Ret. Handlers run with kernel privileges after the full entry path.
  void DefineSyscall(int nr, std::function<void(ProgramBuilder&)> emit_body);
  // Emits "syscall nr" invocation into user code (sets r10, executes kSyscall).
  void EmitSyscall(ProgramBuilder& b, Sys nr);
  // Registers an extra kcall hook (ids >= kKcallCustomBase).
  void RegisterKcall(int64_t id, Machine::KcallHook hook);
  static constexpr int64_t kKcallCustomBase = 100;
  // Registers extra text emitted during Finalize after the standard kernel
  // text (used by the hypervisor substrate for its vmexit handler).
  void AddTextEmitter(std::function<void(ProgramBuilder&)> emitter);
  // Runs after Finalize completes (machine configured, symbols resolved).
  void AddPostFinalizeHook(std::function<void()> hook);

  // Emits kernel text, builds the program, configures the machine and
  // initial process state. After this the build phase is over.
  void Finalize();

  // --- Run phase -----------------------------------------------------------
  // Sets where process `pid` starts/resumes in user mode (symbol from the
  // build phase). The boot process resumes wherever Run() enters.
  void SetProcessEntry(int pid, const std::string& symbol);
  // Runs user code at `symbol` in the boot process until kHalt.
  Machine::RunResult Run(const std::string& symbol,
                         uint64_t max_instructions = 200'000'000);

  Machine& machine() { return *machine_; }
  const Program& program() const { return program_; }
  const MitigationConfig& config() const { return config_; }
  const CpuModel& cpu() const { return cpu_; }
  Process& process(int pid);
  Process& current_process() { return process(current_pid_); }
  int process_count() const { return static_cast<int>(processes_.size()); }
  PageMapper& mapper() { return mapper_; }

  // Whether SSBD is in force for `proc` under the configured policy.
  bool SsbdActiveFor(const Process& proc) const;

  // Cost model of one user->kernel->user crossing outside the syscall path
  // (page faults). Mirrors the mitigation work the IR entry/exit paths do;
  // cross-checked against the measured null syscall in tests.
  uint64_t BoundaryCrossingCost() const;
  // Charges BoundaryCrossingCost() to the machine, decomposed per CauseTag
  // (the per-cause charges sum exactly to BoundaryCrossingCost()).
  void ChargeBoundaryCrossing();

  // Number of faults serviced (page-fault benchmark instrumentation).
  uint64_t page_faults() const { return page_faults_; }
  uint64_t context_switches() const { return context_switches_; }

 private:
  void EmitKernelText();
  void EmitEntryPath();
  void EmitExitPath();
  void EmitProtectedIndirectCall(uint8_t target_reg);
  void EmitRetpolineThunk();
  void EmitStandardHandlers();
  void EmitCopyLoop(bool to_user);
  void EmitKernelWorkLoop(int iterations);
  void SetupAddressSpaces(Process& proc);
  void InstallHooks();
  void WriteSyscallTable();
  void LoadPercpuFor(const Process& proc);
  void ContextSwitchTo(Process& next);
  bool HandlePageFault(uint64_t vaddr);

  const CpuModel cpu_;
  MitigationConfig config_;
  ProgramBuilder builder_;
  Program program_;
  std::unique_ptr<Machine> machine_;
  PageMapper mapper_;
  PhysAllocator phys_;

  std::vector<std::unique_ptr<Process>> processes_;
  int current_pid_ = 0;
  int fpu_owner_pid_ = 0;
  uint64_t next_asid_ = 1;
  bool finalized_ = false;

  std::array<std::function<void(ProgramBuilder&)>, kMaxSyscalls> syscall_emitters_{};
  std::array<uint64_t, kMaxSyscalls> syscall_handler_vaddr_{};
  Label retpoline_thunk_label_{};

  // Shared kernel physical backing (one kernel, many address spaces).
  struct KernelPhys {
    uint64_t percpu = 0;
    uint64_t table = 0;
    uint64_t secret = 0;
    uint64_t heap = 0;
    uint64_t shared_user_data = 0;
    uint64_t host_data = 0;
  };
  KernelPhys kernel_phys_;

  std::vector<std::function<void(ProgramBuilder&)>> extra_text_emitters_;
  std::vector<std::function<void()>> post_finalize_hooks_;

  uint64_t page_faults_ = 0;
  uint64_t context_switches_ = 0;
  // Simple FIFO byte count for send/recv semantics.
  uint64_t ipc_queued_bytes_ = 0;
};

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_OS_KERNEL_H_
