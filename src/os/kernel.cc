#include "src/os/kernel.h"

#include <algorithm>

#include "src/util/check.h"

namespace specbench {

namespace {

// Register ABI shorthands (see header).
constexpr uint8_t kArg0 = 0;
constexpr uint8_t kArg1 = 1;
constexpr uint8_t kScr8 = 8;
constexpr uint8_t kScr9 = 9;
constexpr uint8_t kSysNr = 10;
constexpr uint8_t kTarget = 11;  // dispatch target / retpoline input
constexpr uint8_t kScr12 = 12;
constexpr uint8_t kScr13 = 13;

// Built-in kcall hook ids.
constexpr int64_t kKcallSwitch = 1;
constexpr int64_t kKcallMmap = 2;
constexpr int64_t kKcallMunmap = 3;
constexpr int64_t kKcallFork = 4;
constexpr int64_t kKcallThreadCreate = 5;

// Extra per-cpu slot: current pid.
constexpr uint64_t kPercpuCurrentPid = 32;

// Offset into the kernel heap used as the scratch "page table" area the mmap
// handler writes, and as the IPC queue buffer.
constexpr uint64_t kHeapPtScratch = 0x8000;
constexpr uint64_t kHeapIpcQueue = 0x10000;

}  // namespace

Kernel::Kernel(const CpuModel& cpu, const MitigationConfig& config)
    : cpu_(cpu), config_(config), machine_(std::make_unique<Machine>(cpu)) {
  // Boot process.
  CreateProcess();
}

Process& Kernel::CreateProcess() {
  auto proc = std::make_unique<Process>();
  proc->pid = static_cast<int>(processes_.size());
  SetupAddressSpaces(*proc);
  processes_.push_back(std::move(proc));
  return *processes_.back();
}

Process& Kernel::process(int pid) {
  SPECBENCH_CHECK(pid >= 0 && pid < static_cast<int>(processes_.size()));
  return *processes_[static_cast<size_t>(pid)];
}

void Kernel::SetupAddressSpaces(Process& proc) {
  // Shared kernel physical structures, allocated once.
  static_assert(kPageBytes == 4096);
  if (processes_.empty()) {
    // First call: allocate the shared kernel backing store.
    kernel_phys_.percpu = phys_.Alloc(kPageBytes);
    kernel_phys_.table = phys_.Alloc(kPageBytes);
    kernel_phys_.secret = phys_.Alloc(kPageBytes);
    kernel_phys_.heap = phys_.Alloc(kKernelHeapBytes);
    kernel_phys_.shared_user_data = phys_.Alloc(kUserDataBytes);
    kernel_phys_.host_data = phys_.Alloc(kHostDataBytes);
  }

  proc.user_cr3 = next_asid_++;
  proc.kernel_cr3 = config_.pti ? next_asid_++ : proc.user_cr3;

  const uint64_t stack_phys = phys_.Alloc(kUserStackBytes);
  const uint64_t stack_base = kUserStackTop - kUserStackBytes;

  auto map_common = [&](uint64_t asid) {
    // User-visible memory.
    mapper_.AddRegion(asid, stack_base, kUserStackBytes, stack_phys, /*user=*/true);
    mapper_.AddRegion(asid, kUserDataVaddr, kUserDataBytes, kernel_phys_.shared_user_data,
                      /*user=*/true);
    // Trampoline data needed on every kernel entry, supervisor-only.
    mapper_.AddRegion(asid, kPercpuVaddr, kPageBytes, kernel_phys_.percpu, /*user=*/false);
    mapper_.AddRegion(asid, kSyscallTableVaddr, kPageBytes, kernel_phys_.table,
                      /*user=*/false);
    // VMM-owned data: reachable from host mode under any cr3.
    mapper_.AddRegion(asid, kHostDataVaddr, kHostDataBytes, kernel_phys_.host_data,
                      /*user=*/false);
  };
  map_common(proc.user_cr3);
  if (config_.pti) {
    map_common(proc.kernel_cr3);
  }
  // Kernel-private data: only reachable through the kernel view under PTI;
  // in the shared view (no PTI) it is mapped but supervisor-only — the
  // classic Meltdown exposure.
  mapper_.AddRegion(proc.kernel_cr3, kKernelSecretVaddr, kPageBytes, kernel_phys_.secret,
                    /*user=*/false);
  mapper_.AddRegion(proc.kernel_cr3, kKernelHeapVaddr, kKernelHeapBytes, kernel_phys_.heap,
                    /*user=*/false);
}

void Kernel::DefineSyscall(int nr, std::function<void(ProgramBuilder&)> emit_body) {
  SPECBENCH_CHECK(!finalized_);
  SPECBENCH_CHECK(nr >= 0 && nr < kMaxSyscalls);
  syscall_emitters_[static_cast<size_t>(nr)] = std::move(emit_body);
}

void Kernel::EmitSyscall(ProgramBuilder& b, Sys nr) {
  b.MovImm(kSysNr, static_cast<int64_t>(nr));
  b.Syscall();
}

void Kernel::RegisterKcall(int64_t id, Machine::KcallHook hook) {
  SPECBENCH_CHECK_MSG(id >= kKcallCustomBase, "custom kcall ids start at kKcallCustomBase");
  machine_->RegisterKcall(id, std::move(hook));
}

void Kernel::EmitProtectedIndirectCall(uint8_t target_reg) {
  SPECBENCH_CHECK(target_reg == kTarget);
  switch (config_.retpoline) {
    case RetpolineMode::kNone:
      // Either unprotected or covered by IBRS/eIBRS.
      builder_.IndirectCall(target_reg);
      break;
    case RetpolineMode::kAmd:
      // Paper Figure 4: lfence; call *%r11. The fence is the mitigation;
      // the dispatch itself is baseline work.
      {
        CauseScope tag(builder_, CauseTag::kSpectreV2);
        builder_.Lfence();
      }
      builder_.IndirectCall(target_reg);
      break;
    case RetpolineMode::kGeneric:
      builder_.Call(retpoline_thunk_label_);
      break;
  }
}

void Kernel::EmitRetpolineThunk() {
  // Paper Figure 4, transcribed: the ret speculates to the pause/lfence spin
  // via the RSB while architecturally jumping to the target in kTarget.
  // The whole thunk is Spectre V2 mitigation code; the call site that enters
  // it stays baseline (it replaces the plain indirect call).
  CauseScope tag(builder_, CauseTag::kSpectreV2);
  retpoline_thunk_label_ = builder_.NewLabel();
  Label setup = builder_.NewLabel();
  Label spin = builder_.NewLabel();
  Label done = builder_.NewLabel();
  builder_.Jmp(done);  // thunk body is emitted out of line; skip over it
  builder_.Bind(retpoline_thunk_label_);
  builder_.Call(setup);
  builder_.Bind(spin);
  builder_.Pause();
  builder_.Lfence();
  builder_.Jmp(spin);
  builder_.Bind(setup);
  builder_.Store(MemRef{.base = kRegSp}, kTarget);  // overwrite return address
  builder_.Ret();
  builder_.Bind(done);
}

void Kernel::EmitKernelWorkLoop(int iterations) {
  // Generic in-kernel work (bookkeeping, accounting, VFS-style layers):
  // a dependent load/modify/store loop over kernel heap data. Keeps the
  // baseline cost of each operation at realistic Linux-like magnitudes so
  // mitigation costs show up at the paper's relative scale.
  Label loop = builder_.NewLabel();
  builder_.MovImm(kScr8, iterations);
  builder_.Bind(loop);
  builder_.Load(kScr9, MemRef{.disp = static_cast<int64_t>(kKernelHeapVaddr + 0x30000)});
  builder_.AluImm(AluOp::kAdd, kScr9, kScr9, 1);
  builder_.Store(MemRef{.disp = static_cast<int64_t>(kKernelHeapVaddr + 0x30000)}, kScr9);
  builder_.AluImm(AluOp::kXor, kScr12, kScr9, 13);
  builder_.AluImm(AluOp::kSub, kScr8, kScr8, 1);
  builder_.BranchNz(kScr8, loop);
}

void Kernel::EmitEntryPath() {
  builder_.BindSymbol("syscall_entry");
  builder_.Swapgs();
  if (config_.lfence_after_swapgs) {
    CauseScope tag(builder_, CauseTag::kSpectreV1);
    builder_.Lfence();
  }
  if (config_.pti) {
    CauseScope tag(builder_, CauseTag::kPti);
    builder_.Load(kScr9, MemRef{.disp = static_cast<int64_t>(kPercpuVaddr + kPercpuKernelCr3)});
    builder_.MovCr3(kScr9);
  }
  if (config_.ibrs == IbrsMode::kLegacyIbrs) {
    CauseScope tag(builder_, CauseTag::kSpectreV2);
    builder_.Load(kScr9,
                  MemRef{.disp = static_cast<int64_t>(kPercpuVaddr + kPercpuSpecCtrlEntry)});
    builder_.Wrmsr(kMsrSpecCtrl, kScr9);
  }
  // Save the user register frame (pt_regs).
  for (uint8_t r = 0; r < 6; r++) {
    builder_.Store(MemRef{.base = kRegSp, .disp = -8 * (r + 1)}, r);
  }
  // Dispatch. Spectre V1 hardening clamps the table index with a cmov
  // barrier (the "array index masking" pattern).
  if (config_.kernel_index_masking) {
    CauseScope tag(builder_, CauseTag::kSpectreV1);
    builder_.MovImm(kScr8, 0);
    builder_.AluImm(AluOp::kCmpGe, kScr9, kSysNr, kMaxSyscalls);
    builder_.Cmov(kSysNr, kScr8, kScr9);
  }
  builder_.Lea(kScr9, MemRef{.index = kSysNr,
                             .scale = 8,
                             .disp = static_cast<int64_t>(kSyscallTableVaddr)});
  builder_.Load(kTarget, MemRef{.base = kScr9});
  EmitProtectedIndirectCall(kTarget);
  // Handlers return here; fall through into the exit path.
}

void Kernel::EmitExitPath() {
  builder_.BindSymbol("syscall_exit");
  // Restore the user register frame (r0 carries the return value).
  for (uint8_t r = 1; r < 6; r++) {
    builder_.Load(r, MemRef{.base = kRegSp, .disp = -8 * (r + 1)});
  }
  if (config_.ibrs == IbrsMode::kLegacyIbrs) {
    CauseScope tag(builder_, CauseTag::kSpectreV2);
    builder_.Load(kScr9,
                  MemRef{.disp = static_cast<int64_t>(kPercpuVaddr + kPercpuSpecCtrlExit)});
    builder_.Wrmsr(kMsrSpecCtrl, kScr9);
  }
  if (config_.mds_clear_buffers) {
    CauseScope tag(builder_, CauseTag::kMds);
    builder_.Verw();
  }
  if (config_.pti) {
    CauseScope tag(builder_, CauseTag::kPti);
    builder_.Load(kScr9, MemRef{.disp = static_cast<int64_t>(kPercpuVaddr + kPercpuUserCr3)});
    builder_.MovCr3(kScr9);
  }
  builder_.Swapgs();
  builder_.Sysret();
}

void Kernel::EmitCopyLoop(bool to_user) {
  // r0 = user pointer, r1 = byte count. Copies between the user buffer and
  // the kernel heap (read: kernel->user; write: user->kernel).
  Label loop = builder_.NewLabel();
  Label done = builder_.NewLabel();
  builder_.AluImm(AluOp::kShr, kScr8, kArg1, 3);  // words
  builder_.BranchZ(kScr8, done);
  builder_.Mov(kScr9, kArg0);
  builder_.MovImm(kScr12, static_cast<int64_t>(kKernelHeapVaddr));
  builder_.Bind(loop);
  if (to_user) {
    builder_.Load(kScr13, MemRef{.base = kScr12});
    builder_.Store(MemRef{.base = kScr9}, kScr13);
  } else {
    builder_.Load(kScr13, MemRef{.base = kScr9});
    builder_.Store(MemRef{.base = kScr12}, kScr13);
  }
  builder_.AluImm(AluOp::kAdd, kScr9, kScr9, 8);
  builder_.AluImm(AluOp::kAdd, kScr12, kScr12, 8);
  builder_.AluImm(AluOp::kSub, kScr8, kScr8, 1);
  builder_.BranchNz(kScr8, loop);
  builder_.Bind(done);
  builder_.Ret();
}

void Kernel::EmitStandardHandlers() {
  auto record = [&](Sys nr) {
    syscall_handler_vaddr_[static_cast<size_t>(nr)] =
        kDefaultCodeBase + static_cast<uint64_t>(builder_.NextIndex()) * kInstructionBytes;
  };

  // getpid: the minimal syscall (LEBench's "null" operation).
  record(Sys::kGetpid);
  builder_.BindSymbol("sys_getpid");
  EmitKernelWorkLoop(220);  // task-struct walks, audit, rcu bookkeeping
  builder_.Load(kScr8, MemRef{.disp = static_cast<int64_t>(kPercpuVaddr + kPercpuCurrentPid)});
  builder_.Mov(kArg0, kScr8);
  builder_.Ret();

  // yield: the context-switch path with its mitigation work.
  record(Sys::kYield);
  builder_.BindSymbol("sys_yield");
  EmitKernelWorkLoop(60);  // scheduler pick_next / runqueue work
  builder_.Kcall(kKcallSwitch);
  if (config_.eager_fpu) {
    // Eager FPU state switching (the LazyFP mitigation); the lazy path pays
    // an equivalent trap cost on first use, charged untagged in the hook.
    CauseScope tag(builder_, CauseTag::kOther);
    builder_.Xsave();
    builder_.Xrstor();
  }
  // Note: IBPB on context switch is *conditional* in Linux (applied when the
  // incoming process opted into protection, e.g. via seccomp); it happens in
  // the switch hook, not unconditionally here.
  if (config_.rsb_stuff_on_context_switch) {
    CauseScope tag(builder_, CauseTag::kSpectreV2);
    builder_.RsbStuff();
  }
  builder_.Load(kScr9, MemRef{.disp = static_cast<int64_t>(kPercpuVaddr + kPercpuKernelCr3)});
  builder_.MovCr3(kScr9);
  builder_.Ret();

  record(Sys::kRead);
  builder_.BindSymbol("sys_read");
  EmitKernelWorkLoop(60);  // fdtable lookup + VFS layers
  EmitCopyLoop(/*to_user=*/true);

  record(Sys::kWrite);
  builder_.BindSymbol("sys_write");
  EmitKernelWorkLoop(60);
  EmitCopyLoop(/*to_user=*/false);

  // mmap: write a page-table entry per page, then register the VMA.
  record(Sys::kMmap);
  builder_.BindSymbol("sys_mmap");
  EmitKernelWorkLoop(40);  // vma allocation and rbtree insertion
  {
    Label loop = builder_.NewLabel();
    Label done = builder_.NewLabel();
    builder_.AluImm(AluOp::kShr, kScr8, kArg0, 12);
    builder_.AluImm(AluOp::kAdd, kScr8, kScr8, 1);
    builder_.MovImm(kScr9, static_cast<int64_t>(kKernelHeapVaddr + kHeapPtScratch));
    builder_.Bind(loop);
    builder_.Store(MemRef{.base = kScr9}, kScr8);
    builder_.AluImm(AluOp::kAdd, kScr9, kScr9, 8);
    builder_.AluImm(AluOp::kSub, kScr8, kScr8, 1);
    builder_.BranchNz(kScr8, loop);
    builder_.Bind(done);
    builder_.Kcall(kKcallMmap);
    builder_.Ret();
  }

  record(Sys::kMunmap);
  builder_.BindSymbol("sys_munmap");
  EmitKernelWorkLoop(40);
  builder_.Kcall(kKcallMunmap);
  builder_.Ret();

  // send/recv: copies through a kernel IPC queue buffer.
  record(Sys::kSend);
  builder_.BindSymbol("sys_send");
  EmitKernelWorkLoop(50);  // socket lookup and skb setup
  {
    Label loop = builder_.NewLabel();
    Label done = builder_.NewLabel();
    builder_.AluImm(AluOp::kShr, kScr8, kArg1, 3);
    builder_.BranchZ(kScr8, done);
    builder_.Mov(kScr9, kArg0);
    builder_.MovImm(kScr12, static_cast<int64_t>(kKernelHeapVaddr + kHeapIpcQueue));
    builder_.Bind(loop);
    builder_.Load(kScr13, MemRef{.base = kScr9});
    builder_.Store(MemRef{.base = kScr12}, kScr13);
    builder_.AluImm(AluOp::kAdd, kScr9, kScr9, 8);
    builder_.AluImm(AluOp::kAdd, kScr12, kScr12, 8);
    builder_.AluImm(AluOp::kSub, kScr8, kScr8, 1);
    builder_.BranchNz(kScr8, loop);
    builder_.Bind(done);
    builder_.Ret();
  }

  record(Sys::kRecv);
  builder_.BindSymbol("sys_recv");
  EmitKernelWorkLoop(50);
  {
    Label loop = builder_.NewLabel();
    Label done = builder_.NewLabel();
    builder_.AluImm(AluOp::kShr, kScr8, kArg1, 3);
    builder_.BranchZ(kScr8, done);
    builder_.Mov(kScr9, kArg0);
    builder_.MovImm(kScr12, static_cast<int64_t>(kKernelHeapVaddr + kHeapIpcQueue));
    builder_.Bind(loop);
    builder_.Load(kScr13, MemRef{.base = kScr12});
    builder_.Store(MemRef{.base = kScr9}, kScr13);
    builder_.AluImm(AluOp::kAdd, kScr9, kScr9, 8);
    builder_.AluImm(AluOp::kAdd, kScr12, kScr12, 8);
    builder_.AluImm(AluOp::kSub, kScr8, kScr8, 1);
    builder_.BranchNz(kScr8, loop);
    builder_.Bind(done);
    builder_.Ret();
  }

  // select: scan the fd table checking readiness bits (r0 = nfds).
  record(Sys::kSelect);
  builder_.BindSymbol("sys_select");
  EmitKernelWorkLoop(30);  // poll setup, locking
  {
    Label loop = builder_.NewLabel();
    Label not_ready = builder_.NewLabel();
    Label done = builder_.NewLabel();
    builder_.Mov(kScr8, kArg0);
    builder_.BranchZ(kScr8, done);
    builder_.MovImm(kScr9, static_cast<int64_t>(kKernelHeapVaddr + 0x28000));
    builder_.MovImm(kScr12, 0);  // ready count
    builder_.Bind(loop);
    builder_.Load(kScr13, MemRef{.base = kScr9});       // fd state word
    builder_.AluImm(AluOp::kAnd, kScr13, kScr13, 1);    // readiness bit
    builder_.BranchZ(kScr13, not_ready);
    builder_.AluImm(AluOp::kAdd, kScr12, kScr12, 1);
    builder_.Bind(not_ready);
    builder_.AluImm(AluOp::kAdd, kScr9, kScr9, 8);
    builder_.AluImm(AluOp::kSub, kScr8, kScr8, 1);
    builder_.BranchNz(kScr8, loop);
    builder_.Bind(done);
    builder_.Mov(kArg0, kScr12);
    builder_.Ret();
  }

  record(Sys::kFork);
  builder_.BindSymbol("sys_fork");
  EmitKernelWorkLoop(60);
  builder_.Kcall(kKcallFork);
  builder_.Ret();

  record(Sys::kThreadCreate);
  builder_.BindSymbol("sys_thread_create");
  EmitKernelWorkLoop(40);
  builder_.Kcall(kKcallThreadCreate);
  builder_.Ret();

  // Custom syscalls registered by workloads.
  for (int nr = 0; nr < kMaxSyscalls; nr++) {
    if (syscall_emitters_[static_cast<size_t>(nr)]) {
      syscall_handler_vaddr_[static_cast<size_t>(nr)] =
          kDefaultCodeBase + static_cast<uint64_t>(builder_.NextIndex()) * kInstructionBytes;
      syscall_emitters_[static_cast<size_t>(nr)](builder_);
    }
  }
}

void Kernel::EmitKernelText() {
  if (config_.retpoline == RetpolineMode::kGeneric) {
    EmitRetpolineThunk();
  }
  EmitEntryPath();
  EmitExitPath();
  EmitStandardHandlers();
  for (auto& emitter : extra_text_emitters_) {
    emitter(builder_);
  }
}

void Kernel::AddTextEmitter(std::function<void(ProgramBuilder&)> emitter) {
  SPECBENCH_CHECK(!finalized_);
  extra_text_emitters_.push_back(std::move(emitter));
}

void Kernel::AddPostFinalizeHook(std::function<void()> hook) {
  SPECBENCH_CHECK(!finalized_);
  post_finalize_hooks_.push_back(std::move(hook));
}

void Kernel::WriteSyscallTable() {
  const uint64_t saved_cr3 = machine_->cr3();
  machine_->SetCr3(processes_[0]->kernel_cr3);
  const uint64_t fallback = syscall_handler_vaddr_[static_cast<size_t>(Sys::kGetpid)];
  for (int nr = 0; nr < kMaxSyscalls; nr++) {
    const uint64_t handler = syscall_handler_vaddr_[static_cast<size_t>(nr)];
    machine_->PokeData(kSyscallTableVaddr + static_cast<uint64_t>(nr) * 8,
                       handler != 0 ? handler : fallback);
  }
  machine_->SetCr3(saved_cr3);
}

void Kernel::LoadPercpuFor(const Process& proc) {
  const uint64_t saved_cr3 = machine_->cr3();
  machine_->SetCr3(proc.kernel_cr3);
  machine_->PokeData(kPercpuVaddr + kPercpuKernelCr3, proc.kernel_cr3);
  machine_->PokeData(kPercpuVaddr + kPercpuUserCr3, proc.user_cr3);
  const uint64_t ssbd_bit = SsbdActiveFor(proc) ? kSpecCtrlSsbd : 0;
  machine_->PokeData(kPercpuVaddr + kPercpuSpecCtrlEntry, kSpecCtrlIbrs | ssbd_bit);
  machine_->PokeData(kPercpuVaddr + kPercpuSpecCtrlExit, ssbd_bit);
  machine_->PokeData(kPercpuVaddr + kPercpuCurrentPid, static_cast<uint64_t>(proc.pid));
  machine_->SetCr3(saved_cr3);
}

bool Kernel::SsbdActiveFor(const Process& proc) const {
  switch (config_.ssbd) {
    case SsbdMode::kOff: return false;
    case SsbdMode::kPrctl: return proc.ssbd_prctl;
    case SsbdMode::kSeccomp: return proc.ssbd_prctl || proc.uses_seccomp;
    case SsbdMode::kAlways: return true;
  }
  return false;
}

void Kernel::ContextSwitchTo(Process& next) {
  Process& cur = current_process();
  cur.resume_rip = machine_->saved_user_rip();
  machine_->SetSavedUserRip(next.resume_rip);
  // Switch kernel stacks: the remainder of the switch path returns through
  // the *next* process's stack frame (its own suspended yield, or the
  // fabricated initial frame pointing at the syscall exit path).
  cur.saved_rsp = machine_->reg(kRegSp);
  machine_->SetReg(kRegSp, next.saved_rsp);
  LoadPercpuFor(next);
  machine_->SetSsbd(SsbdActiveFor(next));
  if (config_.eager_fpu) {
    // The xsave/xrstor pair in the IR path accounts for the time; here we
    // move the values so no stale registers remain in the FPU.
    for (uint8_t i = 0; i < kNumFpRegs; i++) {
      cur.fp_state[i] = machine_->fpreg(i);
      machine_->SetFpReg(i, next.fp_state[i]);
    }
    fpu_owner_pid_ = next.pid;
    machine_->SetFpuEnabled(true);
  } else {
    // Lazy FPU: leave the previous owner's registers in place and trap on
    // first use — the LazyFP attack surface.
    machine_->SetFpuEnabled(fpu_owner_pid_ == next.pid);
  }
  // Conditional IBPB (Linux default): flush the indirect predictor only for
  // processes that asked for protection (seccomp/prctl) — which is why
  // ordinary benchmark processes do not pay the Table 6 cost on switches.
  if (config_.ibpb_on_context_switch && (next.uses_seccomp || next.ssbd_prctl)) {
    machine_->AddCycles(cpu_.latency.ibpb, CauseTag::kSpectreV2);
    machine_->btb().FlushAll();
  }
  // STIBP: the scheduler rewrites SPEC_CTRL on the switch path to keep the
  // per-thread predictor partition in force — one wrmsr per switch, far
  // cheaper than an IBPB flush and the reason the v2-SMT cell has a cheaper
  // sufficient defense than nosmt.
  if (config_.stibp && cpu_.smt) {
    machine_->AddCycles(cpu_.latency.wrmsr_spec_ctrl, CauseTag::kSpectreV2);
  }
  // Core scheduling: cookie comparison and sibling selection in pick_next.
  // Pure scheduler arithmetic — no MSR traffic, no predictor flush — charged
  // to the MDS family it exists to contain (cross-thread sampling).
  if (config_.core_scheduling && cpu_.smt) {
    machine_->AddCycles(kCoreSchedPickCycles, CauseTag::kMds);
  }
  current_pid_ = next.pid;
  context_switches_++;
  machine_->AddCycles(2500);  // mm switch, runqueue accounting, timers
}

bool Kernel::HandlePageFault(uint64_t vaddr) {
  Process& proc = current_process();
  const uint64_t page_start = vaddr & ~(kPageBytes - 1);
  // Find a VMA covering the fault.
  for (const auto& [start, length] : proc.vmas) {
    if (vaddr >= start && vaddr < start + length) {
      const uint64_t phys = phys_.Alloc(kPageBytes);
      mapper_.AddRegion(proc.user_cr3, page_start, kPageBytes, phys, /*user=*/true);
      if (config_.pti) {
        mapper_.AddRegion(proc.kernel_cr3, page_start, kPageBytes, phys, /*user=*/true);
      }
      page_faults_++;
      // A fault is a full boundary crossing plus handler work; the boundary
      // part mirrors the syscall entry/exit mitigation sequence and is
      // charged per-cause so attribution sees faults like real crossings.
      ChargeBoundaryCrossing();
      machine_->AddCycles(1500);
      return true;
    }
  }
  return false;
}

void Kernel::InstallHooks() {
  machine_->SetPageFaultHook(
      [this](Machine&, uint64_t vaddr) { return HandlePageFault(vaddr); });

  machine_->SetFpTrapHook([this](Machine& m) {
    Process& owner = process(fpu_owner_pid_);
    Process& cur = current_process();
    for (uint8_t i = 0; i < kNumFpRegs; i++) {
      owner.fp_state[i] = m.fpreg(i);
      m.SetFpReg(i, cur.fp_state[i]);
    }
    fpu_owner_pid_ = cur.pid;
    m.SetFpuEnabled(true);
    m.AddCycles(cpu_.latency.xsave + cpu_.latency.xrstor);
  });

  machine_->RegisterKcall(kKcallSwitch, [this](Machine&) {
    const int next_pid = (current_pid_ + 1) % static_cast<int>(processes_.size());
    ContextSwitchTo(process(next_pid));
  });

  machine_->RegisterKcall(kKcallMmap, [this](Machine& m) {
    Process& proc = current_process();
    const uint64_t bytes = std::max<uint64_t>(m.reg(kArg0), kPageBytes);
    const uint64_t vaddr = proc.next_mmap_vaddr;
    proc.next_mmap_vaddr += (bytes + kPageBytes - 1) & ~(kPageBytes - 1);
    proc.vmas[vaddr] = bytes;
    m.SetReg(kArg0, vaddr);
    m.AddCycles(2000);
  });

  machine_->RegisterKcall(kKcallMunmap, [this](Machine& m) {
    Process& proc = current_process();
    const uint64_t vaddr = m.reg(kArg0);
    auto it = proc.vmas.find(vaddr);
    if (it == proc.vmas.end()) {
      m.SetReg(kArg0, static_cast<uint64_t>(-1));
      return;
    }
    const uint64_t pages = (it->second + kPageBytes - 1) / kPageBytes;
    for (uint64_t p = 0; p < pages; p++) {
      mapper_.RemoveRegion(proc.user_cr3, vaddr + p * kPageBytes);
      if (config_.pti) {
        mapper_.RemoveRegion(proc.kernel_cr3, vaddr + p * kPageBytes);
      }
    }
    machine_->tlb().FlushAsid(proc.user_cr3);
    if (config_.pti) {
      machine_->tlb().FlushAsid(proc.kernel_cr3);
    }
    proc.vmas.erase(it);
    m.SetReg(kArg0, 0);
    m.AddCycles(100 + pages * 25);
  });

  machine_->RegisterKcall(kKcallFork, [this](Machine& m) {
    // Model fork+exit: create the child (address space setup + per-page copy
    // cost), return its pid, then reap it so scheduling is unaffected.
    Process& child = CreateProcess();
    const uint64_t regions = mapper_.RegionCount(current_process().user_cr3);
    m.AddCycles(9000 + regions * 300);
    m.SetReg(kArg0, static_cast<uint64_t>(child.pid));
    processes_.pop_back();
  });

  machine_->RegisterKcall(kKcallThreadCreate, [this](Machine& m) {
    // Threads share the address space: allocate only a stack.
    phys_.Alloc(kUserStackBytes);
    m.AddCycles(2500);
    m.SetReg(kArg0, 1);
  });
}

void Kernel::Finalize() {
  SPECBENCH_CHECK(!finalized_);
  finalized_ = true;

  EmitKernelText();
  program_ = builder_.Build();
  machine_->LoadProgram(&program_);
  machine_->SetMemoryMap(&mapper_);
  machine_->SetSyscallEntry(program_.SymbolVaddr("syscall_entry"));

  machine_->SetPcidEnabled(config_.pcid && cpu_.pcid_supported);

  Process& boot = *processes_[0];
  machine_->SetMode(Mode::kUser);
  machine_->SetCr3(boot.user_cr3);
  machine_->SetReg(kRegSp, kUserStackTop - 64);
  machine_->SetFpuEnabled(true);
  fpu_owner_pid_ = 0;
  current_pid_ = 0;

  WriteSyscallTable();
  LoadPercpuFor(boot);
  // Fabricate an initial kernel-stack frame for every non-boot process so
  // the first switch into it "returns" through the syscall exit path and
  // sysrets to its entry point.
  const uint64_t exit_vaddr = program_.SymbolVaddr("syscall_exit");
  for (auto& proc : processes_) {
    if (proc->pid == 0) {
      proc->saved_rsp = kUserStackTop - 64;
      continue;
    }
    const uint64_t frame = kUserStackTop - 64 - 8;
    const uint64_t saved = machine_->cr3();
    machine_->SetCr3(proc->user_cr3);
    machine_->PokeData(frame, exit_vaddr);
    machine_->SetCr3(saved);
    proc->saved_rsp = frame;
  }
  machine_->SetSsbd(SsbdActiveFor(boot));
  if (config_.ibrs == IbrsMode::kEibrs) {
    machine_->SetIbrs(true);  // set once at boot; stays on (eIBRS semantics)
  }
  if (config_.stibp && cpu_.smt) {
    machine_->SetStibp(true);  // partition predictor state between siblings
  }
  InstallHooks();

  // Fill the kernel heap copy-source area with data so read() moves real
  // bytes (and so cache behaviour is consistent).
  const uint64_t saved_cr3 = machine_->cr3();
  machine_->SetCr3(boot.kernel_cr3);
  for (uint64_t off = 0; off < 0x4000; off += 8) {
    machine_->PokeData(kKernelHeapVaddr + off, 0x1234567800ULL + off);
  }
  for (uint64_t off = 0; off < 0x800; off += 8) {
    machine_->PokeData(kKernelHeapVaddr + 0x28000 + off, (off * 2654435761ULL) >> 7);
  }
  machine_->PokeData(kKernelSecretVaddr, 0x5ec7e7ULL);  // the Meltdown target
  machine_->SetCr3(saved_cr3);

  for (auto& hook : post_finalize_hooks_) {
    hook();
  }
}

void Kernel::SetProcessEntry(int pid, const std::string& symbol) {
  process(pid).resume_rip = program_.SymbolVaddr(symbol);
}

Machine::RunResult Kernel::Run(const std::string& symbol, uint64_t max_instructions) {
  SPECBENCH_CHECK_MSG(finalized_, "Kernel::Run before Finalize");
  return machine_->Run(program_.SymbolVaddr(symbol), max_instructions);
}

uint64_t Kernel::BoundaryCrossingCost() const {
  const LatencyTable& lat = cpu_.latency;
  uint64_t cost = lat.syscall + lat.sysret + 2 * lat.swapgs;
  if (config_.lfence_after_swapgs) {
    cost += lat.lfence;
  }
  if (config_.pti) {
    cost += 2 * lat.swap_cr3;
  }
  if (config_.mds_clear_buffers) {
    cost += cpu_.vuln.mds ? lat.verw_clear : lat.verw_legacy;
  }
  if (config_.ibrs == IbrsMode::kLegacyIbrs) {
    cost += 2 * lat.wrmsr_spec_ctrl;
  }
  // Dispatch through the protected indirect branch.
  switch (config_.retpoline) {
    case RetpolineMode::kNone:
      cost += lat.indirect_predicted;
      break;
    case RetpolineMode::kAmd:
      cost += lat.lfence + lat.indirect_predicted;
      break;
    case RetpolineMode::kGeneric:
      cost += 7 + lat.mispredict_penalty;
      break;
  }
  if (config_.kernel_index_masking) {
    cost += 3;
  }
  return cost;
}

void Kernel::ChargeBoundaryCrossing() {
  // The same cost model as BoundaryCrossingCost(), split by the mitigation
  // that owns each term so CycleAttribution sees page faults the way it sees
  // real syscall crossings. The per-cause charges sum exactly to
  // BoundaryCrossingCost() (os_kernel_test cross-checks this).
  const LatencyTable& lat = cpu_.latency;
  uint64_t baseline = lat.syscall + lat.sysret + 2 * lat.swapgs;
  uint64_t v1 = 0, v2 = 0, pti = 0, mds = 0;
  if (config_.lfence_after_swapgs) {
    v1 += lat.lfence;
  }
  if (config_.pti) {
    pti += 2 * lat.swap_cr3;
  }
  if (config_.mds_clear_buffers) {
    mds += cpu_.vuln.mds ? lat.verw_clear : lat.verw_legacy;
  }
  if (config_.ibrs == IbrsMode::kLegacyIbrs) {
    v2 += 2 * lat.wrmsr_spec_ctrl;
  }
  switch (config_.retpoline) {
    case RetpolineMode::kNone:
      baseline += lat.indirect_predicted;
      break;
    case RetpolineMode::kAmd:
      v2 += lat.lfence;
      baseline += lat.indirect_predicted;
      break;
    case RetpolineMode::kGeneric: {
      // The thunk replaces a plain predicted dispatch: charge what the
      // unmitigated dispatch would have cost to baseline and the rest to V2.
      const uint64_t total = 7 + lat.mispredict_penalty;
      const uint64_t base = std::min<uint64_t>(lat.indirect_predicted, total);
      baseline += base;
      v2 += total - base;
      break;
    }
  }
  if (config_.kernel_index_masking) {
    v1 += 3;
  }
  machine_->AddCycles(baseline, CauseTag::kNone);
  machine_->AddCycles(v1, CauseTag::kSpectreV1);
  machine_->AddCycles(v2, CauseTag::kSpectreV2);
  machine_->AddCycles(pti, CauseTag::kPti);
  machine_->AddCycles(mds, CauseTag::kMds);
}

}  // namespace specbench
