#include "src/os/mitigation_config.h"

#include <sstream>

namespace specbench {

const char* RetpolineModeName(RetpolineMode mode) {
  switch (mode) {
    case RetpolineMode::kNone: return "none";
    case RetpolineMode::kGeneric: return "generic";
    case RetpolineMode::kAmd: return "amd";
  }
  return "?";
}

const char* IbrsModeName(IbrsMode mode) {
  switch (mode) {
    case IbrsMode::kOff: return "off";
    case IbrsMode::kLegacyIbrs: return "ibrs";
    case IbrsMode::kEibrs: return "eibrs";
  }
  return "?";
}

const char* SsbdModeName(SsbdMode mode) {
  switch (mode) {
    case SsbdMode::kOff: return "off";
    case SsbdMode::kPrctl: return "prctl";
    case SsbdMode::kSeccomp: return "seccomp";
    case SsbdMode::kAlways: return "on";
  }
  return "?";
}

MitigationConfig MitigationConfig::Defaults(const CpuModel& cpu) {
  MitigationConfig c;
  c.pti = cpu.vuln.meltdown;
  c.mds_clear_buffers = cpu.vuln.mds;
  c.smt_off = false;  // Table 1: "!": not enabled by default even when vulnerable
  // Spectre V2: eIBRS where available, otherwise retpolines (vendor flavour
  // per Table 1: generic on old Intel, lfence-based on AMD).
  if (cpu.predictor.eibrs) {
    c.ibrs = IbrsMode::kEibrs;
    c.retpoline = RetpolineMode::kNone;
  } else {
    c.ibrs = IbrsMode::kOff;
    c.retpoline = cpu.vendor == Vendor::kAmd ? RetpolineMode::kAmd : RetpolineMode::kGeneric;
  }
  c.ibpb_on_context_switch = true;
  c.rsb_stuff_on_context_switch = true;
  c.lfence_after_swapgs = true;
  c.kernel_index_masking = true;
  c.eager_fpu = true;  // Table 1: "Always save FPU" on every CPU
  c.l1tf_pte_inversion = cpu.vuln.l1tf;
  c.l1d_flush_on_vmentry = cpu.vuln.l1tf;
  c.ssbd = SsbdMode::kSeccomp;  // pre-Linux-5.16 default (paper §4.3)
  return c;
}

MitigationConfig MitigationConfig::AllOff() {
  MitigationConfig c;
  c.eager_fpu = true;  // Linux keeps eager FPU even with mitigations=off
  return c;
}

bool MitigationConfig::MitigatesMeltdown(const CpuModel& cpu) const {
  return !cpu.vuln.meltdown || pti;
}

bool MitigationConfig::MitigatesMds(const CpuModel& cpu) const {
  return !cpu.vuln.mds || mds_clear_buffers;
}

bool MitigationConfig::MitigatesSpectreV2Kernel(const CpuModel& cpu) const {
  if (!cpu.vuln.spectre_v2) {
    return true;
  }
  if (ibrs == IbrsMode::kEibrs && cpu.predictor.eibrs) {
    return true;
  }
  if (ibrs == IbrsMode::kLegacyIbrs && cpu.predictor.ibrs_supported) {
    return true;
  }
  // Note: the AMD (lfence) retpoline was later shown incompletely effective
  // [Milburn et al. 2022]; the paper (and we) treat it as the deployed
  // mitigation of the measurement period.
  return retpoline != RetpolineMode::kNone;
}

std::string MitigationConfig::Describe() const {
  std::ostringstream out;
  out << "pti=" << (pti ? "on" : "off")
      << " mds=" << (mds_clear_buffers ? "clear" : "off")
      << " retpoline=" << RetpolineModeName(retpoline)
      << " ibrs=" << IbrsModeName(ibrs)
      << " ibpb=" << (ibpb_on_context_switch ? "on" : "off")
      << " rsb_stuff=" << (rsb_stuff_on_context_switch ? "on" : "off")
      << " v1=" << (kernel_index_masking ? "on" : "off")
      << " ssbd=" << SsbdModeName(ssbd)
      << " l1tf=" << (l1tf_pte_inversion ? "on" : "off")
      << " stibp=" << (stibp ? "on" : "off")
      << " coresched=" << (core_scheduling ? "on" : "off");
  return out.str();
}

bool ApplyBootParam(MitigationConfig* config, const CpuModel& cpu, const std::string& token) {
  if (token == "mitigations=off") {
    *config = MitigationConfig::AllOff();
    return true;
  }
  if (token == "mitigations=auto") {
    *config = MitigationConfig::Defaults(cpu);
    return true;
  }
  if (token == "nopcid") {
    config->pcid = false;
    return true;
  }
  if (token == "nopti" || token == "pti=off") {
    config->pti = false;
    return true;
  }
  if (token == "pti=on") {
    config->pti = true;
    return true;
  }
  if (token == "mds=off") {
    config->mds_clear_buffers = false;
    return true;
  }
  if (token == "mds=full") {
    config->mds_clear_buffers = cpu.vuln.mds;
    return true;
  }
  if (token == "nospectre_v1") {
    config->lfence_after_swapgs = false;
    config->kernel_index_masking = false;
    return true;
  }
  if (token == "nospectre_v2") {
    config->retpoline = RetpolineMode::kNone;
    config->ibrs = IbrsMode::kOff;
    config->ibpb_on_context_switch = false;
    config->rsb_stuff_on_context_switch = false;
    return true;
  }
  if (token == "spectre_v2=retpoline" || token == "spectre_v2=retpoline,generic") {
    config->retpoline = RetpolineMode::kGeneric;
    config->ibrs = IbrsMode::kOff;
    return true;
  }
  if (token == "spectre_v2=retpoline,amd") {
    config->retpoline = RetpolineMode::kAmd;
    config->ibrs = IbrsMode::kOff;
    return true;
  }
  if (token == "spectre_v2=ibrs") {
    if (!cpu.predictor.ibrs_supported) {
      return false;
    }
    config->ibrs = cpu.predictor.eibrs ? IbrsMode::kEibrs : IbrsMode::kLegacyIbrs;
    config->retpoline = RetpolineMode::kNone;
    return true;
  }
  if (token == "spec_store_bypass_disable=off") {
    config->ssbd = SsbdMode::kOff;
    return true;
  }
  if (token == "spec_store_bypass_disable=prctl") {
    config->ssbd = SsbdMode::kPrctl;
    return true;
  }
  if (token == "spec_store_bypass_disable=seccomp") {
    config->ssbd = SsbdMode::kSeccomp;
    return true;
  }
  if (token == "spec_store_bypass_disable=on") {
    config->ssbd = SsbdMode::kAlways;
    return true;
  }
  if (token == "l1tf=off") {
    config->l1tf_pte_inversion = false;
    config->l1d_flush_on_vmentry = false;
    return true;
  }
  if (token == "l1tf=full") {
    config->l1tf_pte_inversion = cpu.vuln.l1tf;
    config->l1d_flush_on_vmentry = cpu.vuln.l1tf;
    return true;
  }
  if (token == "eagerfpu=off") {
    config->eager_fpu = false;
    return true;
  }
  if (token == "eagerfpu=on") {
    config->eager_fpu = true;
    return true;
  }
  if (token == "nosmt") {
    config->smt_off = true;
    return true;
  }
  // Strict SMT co-residence tokens: only the exact spellings below are
  // accepted ("stibp=forceon" etc. fall through to the unknown-token error).
  if (token == "stibp" || token == "stibp=on") {
    config->stibp = cpu.smt;  // meaningless without a sibling thread
    return true;
  }
  if (token == "stibp=off") {
    config->stibp = false;
    return true;
  }
  if (token == "coresched" || token == "coresched=on") {
    config->core_scheduling = cpu.smt;
    return true;
  }
  if (token == "coresched=off") {
    config->core_scheduling = false;
    return true;
  }
  return false;
}

MitigationConfig ConfigFromCmdline(const CpuModel& cpu, const std::vector<std::string>& tokens) {
  MitigationConfig config = MitigationConfig::Defaults(cpu);
  for (const std::string& token : tokens) {
    ApplyBootParam(&config, cpu, token);
  }
  return config;
}

}  // namespace specbench
