// Page tables for the simulated kernel.
//
// A PageMapper holds, per address-space id (the value loaded into cr3), a
// sorted list of virtual regions with their backing physical range and
// permission bits. Under page table isolation each process owns *two*
// address spaces: the user one maps only user memory plus the kernel
// trampoline (per-cpu data, syscall table, stacks), the kernel one maps
// everything. Without PTI there is a single space where kernel data is
// mapped but supervisor-only — the Meltdown exposure.
#ifndef SPECTREBENCH_SRC_OS_PAGING_H_
#define SPECTREBENCH_SRC_OS_PAGING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/uarch/memory.h"

namespace specbench {

// Simple bump allocator for simulated physical memory.
class PhysAllocator {
 public:
  explicit PhysAllocator(uint64_t base = 0x1000000) : next_(base) {}
  uint64_t Alloc(uint64_t bytes);

 private:
  uint64_t next_;
};

class PageMapper : public MemoryMap {
 public:
  struct Region {
    uint64_t start = 0;  // inclusive
    uint64_t end = 0;    // exclusive
    uint64_t paddr = 0;
    bool user_accessible = false;
    bool present = true;
  };

  // Adds a mapping [vaddr, vaddr+bytes) -> [paddr, ...) to space `asid`.
  // Regions must not overlap existing ones in the same space.
  void AddRegion(uint64_t asid, uint64_t vaddr, uint64_t bytes, uint64_t paddr,
                 bool user_accessible, bool present = true);
  // Removes any region starting exactly at `vaddr`; returns true if found.
  bool RemoveRegion(uint64_t asid, uint64_t vaddr);
  // Marks a region non-present (L1TF experiments) or present again.
  bool SetPresent(uint64_t asid, uint64_t vaddr, bool present);
  // True if `vaddr` falls in any region of `asid`.
  bool IsMapped(uint64_t asid, uint64_t vaddr) const;

  Translation Translate(uint64_t vaddr, uint64_t asid, Mode mode) const override;

  size_t RegionCount(uint64_t asid) const;

 private:
  const Region* FindRegion(uint64_t asid, uint64_t vaddr) const;

  // asid -> regions sorted by start.
  std::map<uint64_t, std::vector<Region>> spaces_;
};

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_OS_PAGING_H_
