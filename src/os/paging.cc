#include "src/os/paging.h"

#include <algorithm>

#include "src/util/check.h"

namespace specbench {

uint64_t PhysAllocator::Alloc(uint64_t bytes) {
  const uint64_t aligned = (bytes + kPageBytes - 1) & ~(kPageBytes - 1);
  const uint64_t result = next_;
  next_ += aligned;
  return result;
}

void PageMapper::AddRegion(uint64_t asid, uint64_t vaddr, uint64_t bytes, uint64_t paddr,
                           bool user_accessible, bool present) {
  SPECBENCH_CHECK(bytes > 0);
  std::vector<Region>& regions = spaces_[asid];
  Region region{vaddr, vaddr + bytes, paddr, user_accessible, present};
  auto it = std::lower_bound(
      regions.begin(), regions.end(), region,
      [](const Region& a, const Region& b) { return a.start < b.start; });
  if (it != regions.end()) {
    SPECBENCH_CHECK_MSG(region.end <= it->start, "overlapping page mapping");
  }
  if (it != regions.begin()) {
    SPECBENCH_CHECK_MSG(std::prev(it)->end <= region.start, "overlapping page mapping");
  }
  regions.insert(it, region);
}

bool PageMapper::RemoveRegion(uint64_t asid, uint64_t vaddr) {
  auto space = spaces_.find(asid);
  if (space == spaces_.end()) {
    return false;
  }
  auto& regions = space->second;
  for (auto it = regions.begin(); it != regions.end(); ++it) {
    if (it->start == vaddr) {
      regions.erase(it);
      return true;
    }
  }
  return false;
}

bool PageMapper::SetPresent(uint64_t asid, uint64_t vaddr, bool present) {
  auto space = spaces_.find(asid);
  if (space == spaces_.end()) {
    return false;
  }
  for (Region& region : space->second) {
    if (vaddr >= region.start && vaddr < region.end) {
      region.present = present;
      return true;
    }
  }
  return false;
}

bool PageMapper::IsMapped(uint64_t asid, uint64_t vaddr) const {
  return FindRegion(asid, vaddr) != nullptr;
}

const PageMapper::Region* PageMapper::FindRegion(uint64_t asid, uint64_t vaddr) const {
  auto space = spaces_.find(asid);
  if (space == spaces_.end()) {
    return nullptr;
  }
  const auto& regions = space->second;
  // First region with start > vaddr; candidate is its predecessor.
  auto it = std::upper_bound(
      regions.begin(), regions.end(), vaddr,
      [](uint64_t value, const Region& r) { return value < r.start; });
  if (it == regions.begin()) {
    return nullptr;
  }
  --it;
  return vaddr < it->end ? &*it : nullptr;
}

Translation PageMapper::Translate(uint64_t vaddr, uint64_t asid, Mode mode) const {
  Translation t;
  const Region* region = FindRegion(asid, vaddr);
  if (region == nullptr) {
    return t;  // unmapped
  }
  t.mapped = true;
  t.present = region->present;
  t.user_accessible = region->user_accessible;
  t.paddr = region->paddr + (vaddr - region->start);
  const bool user_mode = mode == Mode::kUser || mode == Mode::kGuestUser;
  t.valid = region->present && (!user_mode || region->user_accessible);
  return t;
}

size_t PageMapper::RegionCount(uint64_t asid) const {
  auto space = spaces_.find(asid);
  return space == spaces_.end() ? 0 : space->second.size();
}

}  // namespace specbench
