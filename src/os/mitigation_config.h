// Kernel mitigation configuration (the knobs of the whole study).
//
// Mirrors the Linux controls the paper drives via boot parameters (§4.1):
// page table isolation, MDS buffer clearing, the Spectre V2 family
// (retpolines, IBRS/eIBRS, IBPB, RSB stuffing), Spectre V1 kernel hardening,
// SSBD policy, eager FPU, and the L1TF pair. Defaults(cpu) reproduces the
// paper's Table 1 per-processor default set.
#ifndef SPECTREBENCH_SRC_OS_MITIGATION_CONFIG_H_
#define SPECTREBENCH_SRC_OS_MITIGATION_CONFIG_H_

#include <string>
#include <vector>

#include "src/cpu/cpu_model.h"

namespace specbench {

enum class RetpolineMode { kNone, kGeneric, kAmd };
enum class IbrsMode { kOff, kLegacyIbrs, kEibrs };
// Linux's spec_store_bypass_disable= policy.
enum class SsbdMode {
  kOff,      // never
  kPrctl,    // processes opt in via prctl
  kSeccomp,  // prctl + implicitly for seccomp processes (pre-5.16 default)
  kAlways,   // forced on for everything
};

const char* RetpolineModeName(RetpolineMode mode);
const char* IbrsModeName(IbrsMode mode);
const char* SsbdModeName(SsbdMode mode);

struct MitigationConfig {
  // Meltdown.
  bool pti = false;
  // Tag TLB entries with the address-space id so cr3 writes need not flush
  // (on by default; `nopcid` disables it — the §5.1 ablation: without PCIDs,
  // PTI's TLB costs stop being marginal).
  bool pcid = true;
  // MDS.
  bool mds_clear_buffers = false;
  bool smt_off = false;  // never default (Table 1 "!"), modelled for bench
  // Spectre V2.
  RetpolineMode retpoline = RetpolineMode::kNone;
  IbrsMode ibrs = IbrsMode::kOff;
  bool ibpb_on_context_switch = false;
  bool rsb_stuff_on_context_switch = false;
  // SMT co-residence (never default, like smt_off): STIBP partitions the
  // indirect-predictor state between hyperthreads (a SPEC_CTRL write on the
  // context-switch path); core scheduling refuses to co-schedule mutually
  // distrusting processes on SMT siblings (a cookie check per switch), so a
  // cross-thread attacker never runs co-resident with its victim.
  bool stibp = false;
  bool core_scheduling = false;
  // Spectre V1 (kernel side).
  bool lfence_after_swapgs = false;
  bool kernel_index_masking = false;
  // LazyFP.
  bool eager_fpu = true;
  // L1TF.
  bool l1tf_pte_inversion = false;
  bool l1d_flush_on_vmentry = false;
  // Speculative Store Bypass.
  SsbdMode ssbd = SsbdMode::kOff;

  // The per-CPU default set Linux chooses (paper Table 1).
  static MitigationConfig Defaults(const CpuModel& cpu);
  // Everything off (mitigations=off).
  static MitigationConfig AllOff();

  // True if this config protects against the given attack on `cpu` (used by
  // Table 1 rendering and the security ground-truth tests).
  bool MitigatesMeltdown(const CpuModel& cpu) const;
  bool MitigatesMds(const CpuModel& cpu) const;
  bool MitigatesSpectreV2Kernel(const CpuModel& cpu) const;

  // One-line summary for logs.
  std::string Describe() const;
};

// Applies Linux-style boot parameter tokens to a config, e.g. {"nopti",
// "mds=off", "nospectre_v2", "spec_store_bypass_disable=on",
// "mitigations=off", "spectre_v2=retpoline,generic"}.
// Returns false (and leaves `config` untouched for that token) on an
// unrecognized token; processing continues.
bool ApplyBootParam(MitigationConfig* config, const CpuModel& cpu, const std::string& token);
MitigationConfig ConfigFromCmdline(const CpuModel& cpu, const std::vector<std::string>& tokens);

}  // namespace specbench

#endif  // SPECTREBENCH_SRC_OS_MITIGATION_CONFIG_H_
