# Empty dependencies file for spectrebench.
# This may be replaced when dependencies are built.
