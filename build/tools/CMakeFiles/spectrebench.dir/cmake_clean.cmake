file(REMOVE_RECURSE
  "CMakeFiles/spectrebench.dir/spectrebench_cli.cc.o"
  "CMakeFiles/spectrebench.dir/spectrebench_cli.cc.o.d"
  "spectrebench"
  "spectrebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
