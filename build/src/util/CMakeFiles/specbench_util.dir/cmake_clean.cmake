file(REMOVE_RECURSE
  "CMakeFiles/specbench_util.dir/rng.cc.o"
  "CMakeFiles/specbench_util.dir/rng.cc.o.d"
  "CMakeFiles/specbench_util.dir/text_table.cc.o"
  "CMakeFiles/specbench_util.dir/text_table.cc.o.d"
  "libspecbench_util.a"
  "libspecbench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
