file(REMOVE_RECURSE
  "libspecbench_util.a"
)
