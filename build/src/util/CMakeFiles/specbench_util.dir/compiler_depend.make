# Empty compiler generated dependencies file for specbench_util.
# This may be replaced when dependencies are built.
