file(REMOVE_RECURSE
  "libspecbench_hv.a"
)
