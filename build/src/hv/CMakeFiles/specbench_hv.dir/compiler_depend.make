# Empty compiler generated dependencies file for specbench_hv.
# This may be replaced when dependencies are built.
