file(REMOVE_RECURSE
  "CMakeFiles/specbench_hv.dir/hypervisor.cc.o"
  "CMakeFiles/specbench_hv.dir/hypervisor.cc.o.d"
  "libspecbench_hv.a"
  "libspecbench_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
