file(REMOVE_RECURSE
  "CMakeFiles/specbench_jit.dir/jit.cc.o"
  "CMakeFiles/specbench_jit.dir/jit.cc.o.d"
  "libspecbench_jit.a"
  "libspecbench_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
