file(REMOVE_RECURSE
  "libspecbench_jit.a"
)
