# Empty compiler generated dependencies file for specbench_jit.
# This may be replaced when dependencies are built.
