# Empty dependencies file for specbench_os.
# This may be replaced when dependencies are built.
