file(REMOVE_RECURSE
  "libspecbench_os.a"
)
