file(REMOVE_RECURSE
  "CMakeFiles/specbench_os.dir/kernel.cc.o"
  "CMakeFiles/specbench_os.dir/kernel.cc.o.d"
  "CMakeFiles/specbench_os.dir/mitigation_config.cc.o"
  "CMakeFiles/specbench_os.dir/mitigation_config.cc.o.d"
  "CMakeFiles/specbench_os.dir/paging.cc.o"
  "CMakeFiles/specbench_os.dir/paging.cc.o.d"
  "libspecbench_os.a"
  "libspecbench_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
