# Empty compiler generated dependencies file for specbench_core.
# This may be replaced when dependencies are built.
