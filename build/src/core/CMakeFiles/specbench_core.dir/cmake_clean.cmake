file(REMOVE_RECURSE
  "CMakeFiles/specbench_core.dir/attribution.cc.o"
  "CMakeFiles/specbench_core.dir/attribution.cc.o.d"
  "CMakeFiles/specbench_core.dir/experiments.cc.o"
  "CMakeFiles/specbench_core.dir/experiments.cc.o.d"
  "CMakeFiles/specbench_core.dir/microbench.cc.o"
  "CMakeFiles/specbench_core.dir/microbench.cc.o.d"
  "CMakeFiles/specbench_core.dir/paper_expectations.cc.o"
  "CMakeFiles/specbench_core.dir/paper_expectations.cc.o.d"
  "libspecbench_core.a"
  "libspecbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
