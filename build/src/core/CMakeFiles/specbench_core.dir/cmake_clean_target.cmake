file(REMOVE_RECURSE
  "libspecbench_core.a"
)
