file(REMOVE_RECURSE
  "libspecbench_uarch.a"
)
