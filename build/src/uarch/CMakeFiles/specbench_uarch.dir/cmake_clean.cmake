file(REMOVE_RECURSE
  "CMakeFiles/specbench_uarch.dir/cache.cc.o"
  "CMakeFiles/specbench_uarch.dir/cache.cc.o.d"
  "CMakeFiles/specbench_uarch.dir/machine.cc.o"
  "CMakeFiles/specbench_uarch.dir/machine.cc.o.d"
  "CMakeFiles/specbench_uarch.dir/memory.cc.o"
  "CMakeFiles/specbench_uarch.dir/memory.cc.o.d"
  "CMakeFiles/specbench_uarch.dir/predictors.cc.o"
  "CMakeFiles/specbench_uarch.dir/predictors.cc.o.d"
  "libspecbench_uarch.a"
  "libspecbench_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
