# Empty compiler generated dependencies file for specbench_uarch.
# This may be replaced when dependencies are built.
