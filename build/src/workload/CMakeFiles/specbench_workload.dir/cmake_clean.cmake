file(REMOVE_RECURSE
  "CMakeFiles/specbench_workload.dir/lebench.cc.o"
  "CMakeFiles/specbench_workload.dir/lebench.cc.o.d"
  "CMakeFiles/specbench_workload.dir/lfs.cc.o"
  "CMakeFiles/specbench_workload.dir/lfs.cc.o.d"
  "CMakeFiles/specbench_workload.dir/measurement.cc.o"
  "CMakeFiles/specbench_workload.dir/measurement.cc.o.d"
  "CMakeFiles/specbench_workload.dir/octane.cc.o"
  "CMakeFiles/specbench_workload.dir/octane.cc.o.d"
  "CMakeFiles/specbench_workload.dir/parsec.cc.o"
  "CMakeFiles/specbench_workload.dir/parsec.cc.o.d"
  "libspecbench_workload.a"
  "libspecbench_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
