# Empty dependencies file for specbench_workload.
# This may be replaced when dependencies are built.
