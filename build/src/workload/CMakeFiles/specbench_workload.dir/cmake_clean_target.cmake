file(REMOVE_RECURSE
  "libspecbench_workload.a"
)
