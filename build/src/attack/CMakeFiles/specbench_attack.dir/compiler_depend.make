# Empty compiler generated dependencies file for specbench_attack.
# This may be replaced when dependencies are built.
