file(REMOVE_RECURSE
  "CMakeFiles/specbench_attack.dir/attacks.cc.o"
  "CMakeFiles/specbench_attack.dir/attacks.cc.o.d"
  "CMakeFiles/specbench_attack.dir/side_channel.cc.o"
  "CMakeFiles/specbench_attack.dir/side_channel.cc.o.d"
  "CMakeFiles/specbench_attack.dir/speculation_probe.cc.o"
  "CMakeFiles/specbench_attack.dir/speculation_probe.cc.o.d"
  "libspecbench_attack.a"
  "libspecbench_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
