file(REMOVE_RECURSE
  "libspecbench_attack.a"
)
