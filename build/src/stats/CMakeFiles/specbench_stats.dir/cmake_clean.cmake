file(REMOVE_RECURSE
  "CMakeFiles/specbench_stats.dir/sampler.cc.o"
  "CMakeFiles/specbench_stats.dir/sampler.cc.o.d"
  "CMakeFiles/specbench_stats.dir/summary.cc.o"
  "CMakeFiles/specbench_stats.dir/summary.cc.o.d"
  "libspecbench_stats.a"
  "libspecbench_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
