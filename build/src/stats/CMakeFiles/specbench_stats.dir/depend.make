# Empty dependencies file for specbench_stats.
# This may be replaced when dependencies are built.
