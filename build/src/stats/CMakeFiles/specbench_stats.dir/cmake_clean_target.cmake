file(REMOVE_RECURSE
  "libspecbench_stats.a"
)
