# Empty dependencies file for specbench_cpu.
# This may be replaced when dependencies are built.
