file(REMOVE_RECURSE
  "CMakeFiles/specbench_cpu.dir/cpu_model.cc.o"
  "CMakeFiles/specbench_cpu.dir/cpu_model.cc.o.d"
  "libspecbench_cpu.a"
  "libspecbench_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
