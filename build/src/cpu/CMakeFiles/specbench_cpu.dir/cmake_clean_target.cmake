file(REMOVE_RECURSE
  "libspecbench_cpu.a"
)
