file(REMOVE_RECURSE
  "CMakeFiles/specbench_isa.dir/isa.cc.o"
  "CMakeFiles/specbench_isa.dir/isa.cc.o.d"
  "CMakeFiles/specbench_isa.dir/program.cc.o"
  "CMakeFiles/specbench_isa.dir/program.cc.o.d"
  "libspecbench_isa.a"
  "libspecbench_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specbench_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
