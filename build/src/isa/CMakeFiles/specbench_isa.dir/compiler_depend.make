# Empty compiler generated dependencies file for specbench_isa.
# This may be replaced when dependencies are built.
