file(REMOVE_RECURSE
  "libspecbench_isa.a"
)
