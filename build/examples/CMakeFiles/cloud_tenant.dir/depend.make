# Empty dependencies file for cloud_tenant.
# This may be replaced when dependencies are built.
