file(REMOVE_RECURSE
  "CMakeFiles/cloud_tenant.dir/cloud_tenant.cpp.o"
  "CMakeFiles/cloud_tenant.dir/cloud_tenant.cpp.o.d"
  "cloud_tenant"
  "cloud_tenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
