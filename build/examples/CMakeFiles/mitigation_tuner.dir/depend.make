# Empty dependencies file for mitigation_tuner.
# This may be replaced when dependencies are built.
