
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mitigation_tuner.cpp" "examples/CMakeFiles/mitigation_tuner.dir/mitigation_tuner.cpp.o" "gcc" "examples/CMakeFiles/mitigation_tuner.dir/mitigation_tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/specbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/specbench_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/specbench_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/specbench_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/specbench_os.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/specbench_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/specbench_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/specbench_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/specbench_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/specbench_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
