file(REMOVE_RECURSE
  "CMakeFiles/mitigation_tuner.dir/mitigation_tuner.cpp.o"
  "CMakeFiles/mitigation_tuner.dir/mitigation_tuner.cpp.o.d"
  "mitigation_tuner"
  "mitigation_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
