file(REMOVE_RECURSE
  "../bench/bench_ablation_future_hw"
  "../bench/bench_ablation_future_hw.pdb"
  "CMakeFiles/bench_ablation_future_hw.dir/bench_ablation_future_hw.cc.o"
  "CMakeFiles/bench_ablation_future_hw.dir/bench_ablation_future_hw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_future_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
