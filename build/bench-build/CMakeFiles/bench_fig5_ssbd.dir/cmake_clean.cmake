file(REMOVE_RECURSE
  "../bench/bench_fig5_ssbd"
  "../bench/bench_fig5_ssbd.pdb"
  "CMakeFiles/bench_fig5_ssbd.dir/bench_fig5_ssbd.cc.o"
  "CMakeFiles/bench_fig5_ssbd.dir/bench_fig5_ssbd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ssbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
