file(REMOVE_RECURSE
  "../bench/bench_table3_entry_exit"
  "../bench/bench_table3_entry_exit.pdb"
  "CMakeFiles/bench_table3_entry_exit.dir/bench_table3_entry_exit.cc.o"
  "CMakeFiles/bench_table3_entry_exit.dir/bench_table3_entry_exit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_entry_exit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
