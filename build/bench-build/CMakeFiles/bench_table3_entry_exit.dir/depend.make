# Empty dependencies file for bench_table3_entry_exit.
# This may be replaced when dependencies are built.
