file(REMOVE_RECURSE
  "../bench/bench_table7_rsb"
  "../bench/bench_table7_rsb.pdb"
  "CMakeFiles/bench_table7_rsb.dir/bench_table7_rsb.cc.o"
  "CMakeFiles/bench_table7_rsb.dir/bench_table7_rsb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_rsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
