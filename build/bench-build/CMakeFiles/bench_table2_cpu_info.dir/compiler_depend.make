# Empty compiler generated dependencies file for bench_table2_cpu_info.
# This may be replaced when dependencies are built.
