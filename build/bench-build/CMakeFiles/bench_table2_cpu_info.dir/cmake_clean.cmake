file(REMOVE_RECURSE
  "../bench/bench_table2_cpu_info"
  "../bench/bench_table2_cpu_info.pdb"
  "CMakeFiles/bench_table2_cpu_info.dir/bench_table2_cpu_info.cc.o"
  "CMakeFiles/bench_table2_cpu_info.dir/bench_table2_cpu_info.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cpu_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
