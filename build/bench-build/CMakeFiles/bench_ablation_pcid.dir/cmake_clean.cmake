file(REMOVE_RECURSE
  "../bench/bench_ablation_pcid"
  "../bench/bench_ablation_pcid.pdb"
  "CMakeFiles/bench_ablation_pcid.dir/bench_ablation_pcid.cc.o"
  "CMakeFiles/bench_ablation_pcid.dir/bench_ablation_pcid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
