file(REMOVE_RECURSE
  "../bench/bench_fig2_lebench"
  "../bench/bench_fig2_lebench.pdb"
  "CMakeFiles/bench_fig2_lebench.dir/bench_fig2_lebench.cc.o"
  "CMakeFiles/bench_fig2_lebench.dir/bench_fig2_lebench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
