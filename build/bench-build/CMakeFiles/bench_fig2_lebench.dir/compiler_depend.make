# Empty compiler generated dependencies file for bench_fig2_lebench.
# This may be replaced when dependencies are built.
