# Empty dependencies file for bench_ablation_browser_future.
# This may be replaced when dependencies are built.
