file(REMOVE_RECURSE
  "../bench/bench_table9_10_speculation"
  "../bench/bench_table9_10_speculation.pdb"
  "CMakeFiles/bench_table9_10_speculation.dir/bench_table9_10_speculation.cc.o"
  "CMakeFiles/bench_table9_10_speculation.dir/bench_table9_10_speculation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_10_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
