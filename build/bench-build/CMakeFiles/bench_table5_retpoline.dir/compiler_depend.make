# Empty compiler generated dependencies file for bench_table5_retpoline.
# This may be replaced when dependencies are built.
