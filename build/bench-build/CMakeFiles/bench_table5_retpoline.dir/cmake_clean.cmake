file(REMOVE_RECURSE
  "../bench/bench_table5_retpoline"
  "../bench/bench_table5_retpoline.pdb"
  "CMakeFiles/bench_table5_retpoline.dir/bench_table5_retpoline.cc.o"
  "CMakeFiles/bench_table5_retpoline.dir/bench_table5_retpoline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_retpoline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
