# Empty dependencies file for bench_sec622_eibrs_bimodal.
# This may be replaced when dependencies are built.
