file(REMOVE_RECURSE
  "../bench/bench_sec622_eibrs_bimodal"
  "../bench/bench_sec622_eibrs_bimodal.pdb"
  "CMakeFiles/bench_sec622_eibrs_bimodal.dir/bench_sec622_eibrs_bimodal.cc.o"
  "CMakeFiles/bench_sec622_eibrs_bimodal.dir/bench_sec622_eibrs_bimodal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec622_eibrs_bimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
