# Empty dependencies file for bench_table8_lfence.
# This may be replaced when dependencies are built.
