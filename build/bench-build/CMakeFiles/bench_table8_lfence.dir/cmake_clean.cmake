file(REMOVE_RECURSE
  "../bench/bench_table8_lfence"
  "../bench/bench_table8_lfence.pdb"
  "CMakeFiles/bench_table8_lfence.dir/bench_table8_lfence.cc.o"
  "CMakeFiles/bench_table8_lfence.dir/bench_table8_lfence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_lfence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
