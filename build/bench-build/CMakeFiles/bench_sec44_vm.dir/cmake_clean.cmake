file(REMOVE_RECURSE
  "../bench/bench_sec44_vm"
  "../bench/bench_sec44_vm.pdb"
  "CMakeFiles/bench_sec44_vm.dir/bench_sec44_vm.cc.o"
  "CMakeFiles/bench_sec44_vm.dir/bench_sec44_vm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
