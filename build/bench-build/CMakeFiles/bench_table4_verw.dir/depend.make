# Empty dependencies file for bench_table4_verw.
# This may be replaced when dependencies are built.
