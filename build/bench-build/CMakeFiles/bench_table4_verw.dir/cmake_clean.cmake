file(REMOVE_RECURSE
  "../bench/bench_table4_verw"
  "../bench/bench_table4_verw.pdb"
  "CMakeFiles/bench_table4_verw.dir/bench_table4_verw.cc.o"
  "CMakeFiles/bench_table4_verw.dir/bench_table4_verw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_verw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
