# Empty compiler generated dependencies file for bench_ablation_spectre_v2.
# This may be replaced when dependencies are built.
