file(REMOVE_RECURSE
  "../bench/bench_ablation_spectre_v2"
  "../bench/bench_ablation_spectre_v2.pdb"
  "CMakeFiles/bench_ablation_spectre_v2.dir/bench_ablation_spectre_v2.cc.o"
  "CMakeFiles/bench_ablation_spectre_v2.dir/bench_ablation_spectre_v2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spectre_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
