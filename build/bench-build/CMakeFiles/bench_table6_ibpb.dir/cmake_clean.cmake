file(REMOVE_RECURSE
  "../bench/bench_table6_ibpb"
  "../bench/bench_table6_ibpb.pdb"
  "CMakeFiles/bench_table6_ibpb.dir/bench_table6_ibpb.cc.o"
  "CMakeFiles/bench_table6_ibpb.dir/bench_table6_ibpb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ibpb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
