# Empty dependencies file for bench_ablation_smt_mds.
# This may be replaced when dependencies are built.
