file(REMOVE_RECURSE
  "../bench/bench_ablation_smt_mds"
  "../bench/bench_ablation_smt_mds.pdb"
  "CMakeFiles/bench_ablation_smt_mds.dir/bench_ablation_smt_mds.cc.o"
  "CMakeFiles/bench_ablation_smt_mds.dir/bench_ablation_smt_mds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smt_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
