file(REMOVE_RECURSE
  "../bench/bench_sec45_parsec"
  "../bench/bench_sec45_parsec.pdb"
  "CMakeFiles/bench_sec45_parsec.dir/bench_sec45_parsec.cc.o"
  "CMakeFiles/bench_sec45_parsec.dir/bench_sec45_parsec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec45_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
