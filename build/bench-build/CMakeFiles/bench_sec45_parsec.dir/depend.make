# Empty dependencies file for bench_sec45_parsec.
# This may be replaced when dependencies are built.
