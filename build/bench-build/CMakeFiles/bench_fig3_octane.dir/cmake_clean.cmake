file(REMOVE_RECURSE
  "../bench/bench_fig3_octane"
  "../bench/bench_fig3_octane.pdb"
  "CMakeFiles/bench_fig3_octane.dir/bench_fig3_octane.cc.o"
  "CMakeFiles/bench_fig3_octane.dir/bench_fig3_octane.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_octane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
