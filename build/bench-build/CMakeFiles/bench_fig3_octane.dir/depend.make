# Empty dependencies file for bench_fig3_octane.
# This may be replaced when dependencies are built.
