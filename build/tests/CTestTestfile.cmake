# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_model_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_cache_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_predictors_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_machine_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_speculation_test[1]_include.cmake")
include("/root/repo/build/tests/os_paging_test[1]_include.cmake")
include("/root/repo/build/tests/os_config_test[1]_include.cmake")
include("/root/repo/build/tests/os_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/jit_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_machine_edge_test[1]_include.cmake")
