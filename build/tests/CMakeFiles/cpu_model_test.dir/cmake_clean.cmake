file(REMOVE_RECURSE
  "CMakeFiles/cpu_model_test.dir/cpu_model_test.cc.o"
  "CMakeFiles/cpu_model_test.dir/cpu_model_test.cc.o.d"
  "cpu_model_test"
  "cpu_model_test.pdb"
  "cpu_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
