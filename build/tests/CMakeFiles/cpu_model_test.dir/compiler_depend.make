# Empty compiler generated dependencies file for cpu_model_test.
# This may be replaced when dependencies are built.
