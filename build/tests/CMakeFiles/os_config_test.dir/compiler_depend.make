# Empty compiler generated dependencies file for os_config_test.
# This may be replaced when dependencies are built.
