file(REMOVE_RECURSE
  "CMakeFiles/os_config_test.dir/os_config_test.cc.o"
  "CMakeFiles/os_config_test.dir/os_config_test.cc.o.d"
  "os_config_test"
  "os_config_test.pdb"
  "os_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
