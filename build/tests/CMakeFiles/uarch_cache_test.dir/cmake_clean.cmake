file(REMOVE_RECURSE
  "CMakeFiles/uarch_cache_test.dir/uarch_cache_test.cc.o"
  "CMakeFiles/uarch_cache_test.dir/uarch_cache_test.cc.o.d"
  "uarch_cache_test"
  "uarch_cache_test.pdb"
  "uarch_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
