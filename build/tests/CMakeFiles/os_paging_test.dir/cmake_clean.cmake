file(REMOVE_RECURSE
  "CMakeFiles/os_paging_test.dir/os_paging_test.cc.o"
  "CMakeFiles/os_paging_test.dir/os_paging_test.cc.o.d"
  "os_paging_test"
  "os_paging_test.pdb"
  "os_paging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
