file(REMOVE_RECURSE
  "CMakeFiles/uarch_machine_edge_test.dir/uarch_machine_edge_test.cc.o"
  "CMakeFiles/uarch_machine_edge_test.dir/uarch_machine_edge_test.cc.o.d"
  "uarch_machine_edge_test"
  "uarch_machine_edge_test.pdb"
  "uarch_machine_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_machine_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
