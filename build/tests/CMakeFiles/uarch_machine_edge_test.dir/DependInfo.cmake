
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/uarch_machine_edge_test.cc" "tests/CMakeFiles/uarch_machine_edge_test.dir/uarch_machine_edge_test.cc.o" "gcc" "tests/CMakeFiles/uarch_machine_edge_test.dir/uarch_machine_edge_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/specbench_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/specbench_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/specbench_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
