file(REMOVE_RECURSE
  "CMakeFiles/uarch_speculation_test.dir/uarch_speculation_test.cc.o"
  "CMakeFiles/uarch_speculation_test.dir/uarch_speculation_test.cc.o.d"
  "uarch_speculation_test"
  "uarch_speculation_test.pdb"
  "uarch_speculation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_speculation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
