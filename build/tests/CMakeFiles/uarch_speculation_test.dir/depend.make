# Empty dependencies file for uarch_speculation_test.
# This may be replaced when dependencies are built.
