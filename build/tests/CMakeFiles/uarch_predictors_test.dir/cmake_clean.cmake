file(REMOVE_RECURSE
  "CMakeFiles/uarch_predictors_test.dir/uarch_predictors_test.cc.o"
  "CMakeFiles/uarch_predictors_test.dir/uarch_predictors_test.cc.o.d"
  "uarch_predictors_test"
  "uarch_predictors_test.pdb"
  "uarch_predictors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_predictors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
