# Empty dependencies file for uarch_predictors_test.
# This may be replaced when dependencies are built.
