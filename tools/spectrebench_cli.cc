// spectrebench command-line interface: run any of the paper's experiments
// (or the ground-truth attack suite) by name, with CPU filtering and a fast
// mode for quick iterations.
//
//   spectrebench list
//   spectrebench table1|table2|...|table8|tables9-10|sec622
//   spectrebench fig2|fig3|fig5|sec44|sec45 [--fast] [--cpus=Zen 3,Broadwell]
//   spectrebench sweep [--grids=fig2,fig3,sec45] [--jobs=N] [--seed=S] [--csv]
//   spectrebench attacks [--cpus=...]
//   spectrebench difftest [--seeds=A:B] [--cpus=...] [--configs=...] [--jobs=N]
#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/corpus.h"
#include "src/difftest/corpus.h"
#include "src/difftest/difftest.h"
#include "src/difftest/equivalence.h"
#include "src/difftest/generator.h"
#include "src/analysis/crossval.h"
#include "src/analysis/detectors.h"
#include "src/analysis/passes.h"
#include "src/analysis/report.h"
#include "src/attack/attacks.h"
#include "src/core/counters.h"
#include "src/core/experiments.h"
#include "src/core/pareto.h"
#include "src/core/sweep_grids.h"
#include "src/runner/checkpoint.h"
#include "src/runner/service.h"
#include "src/runner/shard.h"
#include "src/util/check.h"
#include "src/workload/lebench.h"
#include "src/workload/octane.h"

using namespace specbench;

namespace {

struct CliOptions {
  bool fast = false;
  bool cross_validate = false;  // difftest: fast vs detailed on every cell
  bool json = false;
  bool csv = false;
  bool quiet = false;           // suppress sweep progress lines on stderr
  int jobs = 0;                 // 0 = hardware_concurrency
  int trials = 5;               // pareto: attack-suite repeats per cell
  uint64_t seed = 1;
  std::vector<Uarch> cpus = AllUarches();
  std::vector<std::string> grids = {"fig2", "fig3", "sec45"};
  std::vector<std::string> workloads;  // empty = all
  std::vector<std::string> configs;    // empty = all
  std::vector<std::string> boot_params;  // Linux-style tokens for `counters`
  bool strict_boot_params = false;     // unrecognized token => exit non-zero
  // difftest options.
  uint64_t seed_begin = 0;             // --seeds=A:B (B exclusive)
  uint64_t seed_end = 100;
  bool seeds_given = false;            // harden: --seeds selects fuzz mode
  bool cpus_given = false;             // --cpus appeared on the command line
  std::vector<std::string> passes;     // harden: --passes=a,b (empty = all)
  uint64_t inject_alu_fault = 0;       // oracle self-check: corrupt nth ALU op
  std::string corpus_out;              // directory for shrunk reproducers
  std::string replay;                  // corpus file to replay instead
  bool arch_hashes = false;            // replay: print arch end-state hashes
  // Sharded / checkpointed sweep options.
  ShardSpec shard;                     // sweep/submit: slice of the grid
  std::string checkpoint;              // sweep: journal file; submit: output
  bool resume = false;                 // sweep: reload journal, run the rest
  std::vector<std::string> inputs;     // merge: shard journals to combine
  std::string socket_path;             // serve/submit: unix socket path
  bool ping = false;                   // submit: liveness probe only
  bool send_shutdown = false;          // submit: stop the server
};

// Strict --seeds=A:B parser: both endpoints must be decimal numbers with no
// trailing garbage and the range must be non-empty (B > A; B exclusive).
// Reversed, empty and non-numeric ranges are command-line errors, not
// silently-empty work lists.
bool ParseU64Strict(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size() && errno == 0;
}

bool ParseSeedRange(const std::string& value, uint64_t* begin, uint64_t* end,
                    std::string* error) {
  const size_t colon = value.find(':');
  if (colon == std::string::npos) {
    *error = "want A:B (B exclusive)";
    return false;
  }
  const std::string a = value.substr(0, colon);
  const std::string b = value.substr(colon + 1);
  if (!ParseU64Strict(a, begin)) {
    *error = "\"" + a + "\" is not a decimal seed";
    return false;
  }
  if (!ParseU64Strict(b, end)) {
    *error = "\"" + b + "\" is not a decimal seed";
    return false;
  }
  if (*end <= *begin) {
    *error = "empty range (B must be greater than A)";
    return false;
  }
  return true;
}

// Per-subcommand flag allowlist. A flag that parses fine but does nothing
// for the given command (e.g. `attacks --seeds=0:5`, `table1 --json`) is a
// user error worth exit code 2, not something to silently ignore. The error
// text is golden-tested (tests/cli_test.cc) — change it deliberately.
struct CommandSpec {
  const char* name;
  std::vector<const char*> flags;  // allowed, without the =value suffix
};

const std::vector<CommandSpec>& CommandSpecs() {
  static const std::vector<CommandSpec> specs = {
      {"list", {}},
      {"table1", {}},
      {"table2", {}},
      {"table3", {}},
      {"table4", {}},
      {"table5", {}},
      {"table6", {}},
      {"table7", {}},
      {"table8", {}},
      {"tables9-10", {}},
      {"sec622", {}},
      {"fig2", {"--fast", "--cpus"}},
      {"fig3", {"--fast", "--cpus"}},
      {"fig5", {"--cpus"}},
      {"sec44", {"--fast", "--cpus"}},
      {"sec45", {"--fast", "--cpus"}},
      {"fig2-kernels", {"--cpus"}},
      {"sweep",
       {"--fast", "--csv", "--quiet", "--jobs", "--seed", "--seeds", "--cpus", "--grids",
        "--workloads", "--configs", "--shard", "--checkpoint", "--resume"}},
      {"merge", {"--inputs", "--csv"}},
      {"serve", {"--socket", "--jobs", "--quiet"}},
      {"submit",
       {"--socket", "--grids", "--seeds", "--cpus", "--workloads", "--configs", "--seed",
        "--fast", "--shard", "--checkpoint", "--ping", "--shutdown"}},
      {"counters", {"--cpus", "--workloads", "--boot-params", "--strict-boot-params"}},
      {"attacks", {"--cpus"}},
      {"pareto", {"--json", "--csv", "--jobs", "--trials", "--seed", "--cpus"}},
      {"analyze", {"--json", "--cpus"}},
      {"harden", {"--seeds", "--passes", "--json", "--cpus"}},
      {"difftest",
       {"--seeds", "--cpus", "--configs", "--jobs", "--inject-alu-fault", "--corpus-out",
        "--replay", "--arch-hashes", "--fast", "--cross-validate"}},
  };
  return specs;
}

const CommandSpec* FindCommandSpec(const std::string& command) {
  for (const CommandSpec& spec : CommandSpecs()) {
    if (command == spec.name) {
      return &spec;
    }
  }
  return nullptr;
}

// Exit-2 diagnostic for a flag the command does not take (or that no
// command takes). Lists the valid options so the fix is one glance away.
int RejectFlag(const std::string& command, const CommandSpec& spec, const std::string& arg) {
  const std::string flag = arg.substr(0, arg.find('='));
  std::string valid;
  for (const char* f : spec.flags) {
    if (!valid.empty()) {
      valid += " ";
    }
    valid += f;
  }
  if (valid.empty()) {
    valid = "none";
  }
  std::fprintf(stderr, "spectrebench %s: unrecognized option '%s' (valid options: %s)\n",
               command.c_str(), flag.c_str(), valid.c_str());
  return 2;
}

bool FlagAllowed(const CommandSpec& spec, const std::string& arg) {
  const std::string flag = arg.substr(0, arg.find('='));
  for (const char* f : spec.flags) {
    if (flag == f) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string item =
        list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

bool Contains(const std::vector<std::string>& haystack, const std::string& needle) {
  for (const std::string& item : haystack) {
    if (item == needle) {
      return true;
    }
  }
  return false;
}

SamplerOptions SamplerForFast(bool fast) {
  SamplerOptions sampler;
  if (fast) {
    sampler.min_samples = 3;
    sampler.max_samples = 6;
    sampler.target_relative_ci = 0.03;
  } else {
    sampler.min_samples = 5;
    sampler.max_samples = 20;
    sampler.target_relative_ci = 0.01;
  }
  return sampler;
}

SamplerOptions SamplerFor(const CliOptions& options) { return SamplerForFast(options.fast); }

std::vector<Uarch> ParseCpuList(const std::string& list) {
  std::vector<Uarch> cpus;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string name =
        list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!name.empty()) {
      const CpuModel* model = TryGetCpuModelByName(name);
      if (model == nullptr) {
        std::fprintf(stderr, "unknown CPU model: \"%s\"\nvalid names:\n", name.c_str());
        for (Uarch u : AllUarches()) {
          std::fprintf(stderr, "  %s\n", UarchName(u));
        }
        std::exit(2);
      }
      cpus.push_back(model->uarch);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  if (cpus.empty()) {
    std::fprintf(stderr, "--cpus= needs at least one name; valid names:\n");
    for (Uarch u : AllUarches()) {
      std::fprintf(stderr, "  %s\n", UarchName(u));
    }
    std::exit(2);
  }
  return cpus;
}

// Arch-hash digest lines for one corpus program across every CPU x difftest
// config. The byte format is the refactor-guard contract: CI compares this
// output against tests/golden/corpus_trace_hashes.txt, so any change to
// retired traces, registers, or memory is caught even when the oracle still
// agrees with itself. Keep in sync with tests/golden/corpus_trace_hashes.txt
// (regenerate the golden deliberately when the ISA itself changes).
uint64_t FoldWord(uint64_t hash, uint64_t word) {
  for (int i = 0; i < 8; i++) {
    hash ^= (word >> (8 * i)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t RegDigest(const ArchState& state) {
  uint64_t hash = kArchHashBasis;
  for (uint64_t reg : state.regs) {
    hash = FoldWord(hash, reg);
  }
  for (uint64_t reg : state.fpregs) {
    hash = FoldWord(hash, reg);
  }
  return hash;
}

void EmitArchHashes(const Program& program, const std::vector<Uarch>& cpus,
                    const std::vector<DiffConfig>& configs) {
  std::printf("# spectrebench arch-hashes v1\n");
  for (Uarch u : cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    for (const DiffConfig& config : configs) {
      const ArchState state = RunMachineArch(program, cpu, config, 1'000'000);
      std::string cpu_slug = std::string(UarchName(u));
      for (char& c : cpu_slug) {
        if (c == ' ') c = '-';
      }
      std::printf(
          "cpu=%s config=%s retired=%llu trace=0x%016llx regs=0x%016llx "
          "mem=0x%016llx halted=%d\n",
          cpu_slug.c_str(), config.name.c_str(),
          static_cast<unsigned long long>(state.retired),
          static_cast<unsigned long long>(state.trace_hash),
          static_cast<unsigned long long>(RegDigest(state)),
          static_cast<unsigned long long>(state.memory_digest),
          state.halted ? 1 : 0);
    }
  }
}

// Builds the grid a sweep/serve request names, with workload/config filters
// applied. Shared between `sweep` and the serve-mode GridFactory so a
// service batch is cell-for-cell the grid the one-shot command would run.
bool BuildFilteredSweep(const std::vector<std::string>& grids, const std::vector<Uarch>& cpus,
                        bool fast, uint64_t seed_begin, uint64_t seed_end,
                        const std::vector<std::string>& workloads,
                        const std::vector<std::string>& configs, Sweep* out, std::string* error) {
  NamedGridOptions grid;
  grid.grids = grids;
  grid.cpus = cpus;
  grid.sampler = SamplerForFast(fast);
  grid.seed_begin = seed_begin;
  grid.seed_end = seed_end;
  grid.fast = fast;
  if (!BuildNamedGrids(grid, out, error)) {
    return false;
  }
  if (!workloads.empty()) {
    out->Retain([&](const SweepCellKey& key) { return Contains(workloads, key.workload); });
  }
  if (!configs.empty()) {
    out->Retain([&](const SweepCellKey& key) { return Contains(configs, key.config); });
  }
  if (out->size() == 0) {
    *error = "cell selection matched nothing";
    return false;
  }
  return true;
}

// Deterministic parallel sweep over the registered experiment grids. The
// JSON/CSV on stdout is byte-identical for any --jobs value; progress and
// per-cell wall times go to stderr. With --checkpoint the run journals
// every completed cell (crash-safe, resumable with --resume); with
// --shard=i/N it executes only its slice, and stdout output is deferred to
// `spectrebench merge` unless this run completes the whole grid.
int RunSweep(const CliOptions& options) {
  if (!options.shard.IsFullGrid() && options.checkpoint.empty()) {
    std::fprintf(stderr, "sweep: --shard requires --checkpoint (the shard's results have to "
                         "land somewhere a merge can read)\n");
    return 2;
  }
  if (options.resume && options.checkpoint.empty()) {
    std::fprintf(stderr, "sweep: --resume requires --checkpoint\n");
    return 2;
  }

  Sweep sweep;
  std::string error;
  if (!BuildFilteredSweep(options.grids, options.cpus, options.fast, options.seed_begin,
                          options.seed_end, options.workloads, options.configs, &sweep, &error)) {
    std::fprintf(stderr, "sweep: %s\n", error.c_str());
    return 2;
  }

  const JournalHeader header{options.seed, sweep.GridDigest(), sweep.size()};
  CheckpointWriter writer;
  CheckpointData loaded;
  std::vector<bool> have(sweep.size(), false);
  if (!options.checkpoint.empty()) {
    if (options.resume) {
      if (!LoadCheckpoint(options.checkpoint, &loaded, &error)) {
        std::fprintf(stderr, "sweep: %s\n", error.c_str());
        return 2;
      }
      if (!writer.OpenForResume(options.checkpoint, header, loaded, &error)) {
        std::fprintf(stderr, "sweep: %s\n", error.c_str());
        return 2;
      }
      for (const auto& [index, cell] : loaded.cells) {
        have[index] = true;
      }
      if (!options.quiet) {
        std::fprintf(stderr, "sweep: resuming %s (%zu of %zu cells already done%s)\n",
                     options.checkpoint.c_str(), loaded.cells.size(), sweep.size(),
                     loaded.truncated_tail ? ", torn tail record discarded" : "");
      }
    } else if (!writer.Create(options.checkpoint, header, &error)) {
      std::fprintf(stderr, "sweep: %s\n", error.c_str());
      return 2;
    }
  }

  RunnerOptions runner;
  runner.jobs = options.jobs;
  runner.base_seed = options.seed;
  runner.progress = !options.quiet;
  const ShardSpec shard = options.shard;
  if (!shard.IsFullGrid() || options.resume) {
    runner.should_run = [&have, shard](size_t i) { return shard.Owns(i) && !have[i]; };
  }
  bool journal_ok = true;
  if (writer.is_open()) {
    runner.on_cell_done = [&writer, &journal_ok](size_t index, const SweepCellResult& cell) {
      if (!writer.Append(index, cell)) {
        journal_ok = false;
      }
    };
  }
  if (!options.quiet) {
    std::fprintf(stderr, "sweep: %zu cells, jobs=%s, seed=%llu\n", sweep.size(),
                 options.jobs <= 0 ? "auto" : std::to_string(options.jobs).c_str(),
                 static_cast<unsigned long long>(options.seed));
  }
  SweepResult result = sweep.Run(runner);
  writer.Close();
  if (!journal_ok) {
    std::fprintf(stderr, "sweep: failed to append to %s (disk full?)\n",
                 options.checkpoint.c_str());
    return 1;
  }
  if (options.resume && !OverlayCheckpoint(loaded, &result, &error)) {
    std::fprintf(stderr, "sweep: %s\n", error.c_str());
    return 2;
  }

  // A sharded run only produced its slice: the full-grid output comes from
  // `spectrebench merge` over all shard journals, so emitting a JSON/CSV
  // with holes here would just be a trap.
  bool complete = true;
  for (size_t i = 0; i < sweep.size(); i++) {
    if (!have[i] && !shard.Owns(i)) {
      complete = false;
      break;
    }
  }
  if (!complete) {
    size_t journaled = loaded.cells.size();
    for (size_t i = 0; i < sweep.size(); i++) {
      if (shard.Owns(i) && !have[i]) {
        journaled++;
      }
    }
    std::fprintf(stderr,
                 "sweep: shard %u/%u checkpointed %zu of %zu cells to %s; run "
                 "`spectrebench merge --inputs=...` over all shard journals for the "
                 "full-grid output\n",
                 shard.index, shard.count, journaled, sweep.size(), options.checkpoint.c_str());
    return 0;
  }
  std::printf("%s", options.csv ? result.ToCsv().c_str() : result.ToJson().c_str());

  if (!options.quiet) {
    std::fprintf(stderr, "sweep: done, %.1f ms of cell work\n", result.total_wall_ms());
  }
  return 0;
}

// Combines N shard journals into the full-grid output, byte-identical to
// the one-shot `sweep --jobs=1` run (the cross-process determinism
// contract: same seeds, bit-exact doubles, registration-order emit).
int RunMerge(const CliOptions& options) {
  if (options.inputs.empty()) {
    std::fprintf(stderr, "merge: --inputs=a.journal,b.journal,... is required\n");
    return 2;
  }
  SweepResult result;
  std::string error;
  if (!MergeCheckpoints(options.inputs, &result, &error)) {
    std::fprintf(stderr, "merge: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s", options.csv ? result.ToCsv().c_str() : result.ToJson().c_str());
  return 0;
}

// Long-running sweep service on a Unix socket: all client batches share one
// thread pool (see src/runner/service.h for the wire protocol).
int RunServe(const CliOptions& options) {
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "serve: --socket=PATH is required\n");
    return 2;
  }
  ServiceOptions service_options;
  service_options.socket_path = options.socket_path;
  service_options.jobs = options.jobs;
  service_options.quiet = options.quiet;
  const GridFactory factory = [](const ServiceRequest& request, Sweep* out, std::string* error) {
    std::vector<Uarch> cpus;
    if (request.cpus.empty()) {
      cpus = AllUarches();
    } else {
      for (const std::string& name : request.cpus) {
        const CpuModel* model = TryGetCpuModelByName(name);
        if (model == nullptr) {
          *error = "unknown CPU model \"" + name + "\"";
          return false;
        }
        cpus.push_back(model->uarch);
      }
    }
    if (request.seed_end <= request.seed_begin) {
      *error = "empty difftest seed range";
      return false;
    }
    return BuildFilteredSweep(request.grids, cpus, request.fast, request.seed_begin,
                              request.seed_end, request.workloads, request.configs, out, error);
  };
  SweepService service(std::move(service_options), factory);
  std::string error;
  if (!service.Start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 2;
  }
  service.Serve();
  return 0;
}

// Service client: submits one batch and writes the streamed records back
// out as a journal (sorted by cell index, so the bytes are deterministic),
// ready for `spectrebench merge`.
int RunSubmit(const CliOptions& options) {
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "submit: --socket=PATH is required\n");
    return 2;
  }
  std::string ok_line;
  std::vector<std::string> reply;
  std::string error;
  if (options.ping || options.send_shutdown) {
    const std::string command = options.ping ? "ping" : "shutdown";
    if (!SubmitRequestLine(options.socket_path, command, &ok_line, &reply, &error)) {
      std::fprintf(stderr, "submit: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", ok_line.c_str());
    return 0;
  }

  ServiceRequest request;
  request.grids = options.grids;
  if (options.cpus_given) {
    for (Uarch u : options.cpus) {
      request.cpus.push_back(UarchName(u));
    }
  }
  request.workloads = options.workloads;
  request.configs = options.configs;
  request.base_seed = options.seed;
  request.seed_begin = options.seed_begin;
  request.seed_end = options.seed_end;
  request.fast = options.fast;
  request.shard = options.shard;
  if (!SubmitRequestLine(options.socket_path, SerializeServiceRequest(request), &ok_line, &reply,
                         &error)) {
    std::fprintf(stderr, "submit: %s\n", error.c_str());
    return 1;
  }

  // The ok line carries the journal-header fields; the cell lines arrive in
  // completion order and are re-sorted by index for byte-stable output.
  unsigned long long cells = 0, base_seed = 0, grid = 0, total = 0;
  if (std::sscanf(ok_line.c_str(), "ok cells=%llu base_seed=%llu grid=%16llx total=%llu", &cells,
                  &base_seed, &grid, &total) != 4) {
    std::fprintf(stderr, "submit: malformed ok line \"%s\"\n", ok_line.c_str());
    return 1;
  }
  std::vector<std::pair<size_t, std::string>> records;
  records.reserve(reply.size());
  for (const std::string& line : reply) {
    size_t index = 0;
    SweepCellResult cell;
    if (!ParseCellRecord(line, &index, &cell, &error)) {
      std::fprintf(stderr, "submit: bad cell record from server: %s\n", error.c_str());
      return 1;
    }
    records.emplace_back(index, line);
  }
  std::sort(records.begin(), records.end());
  const JournalHeader header{base_seed, grid, total};
  std::string journal = SerializeJournalHeader(header) + "\n";
  for (const auto& [index, line] : records) {
    journal += line + "\n";
  }
  if (options.checkpoint.empty()) {
    std::printf("%s", journal.c_str());
  } else {
    std::ofstream out(options.checkpoint, std::ios::binary | std::ios::trunc);
    if (!out || !(out << journal) || !out.flush()) {
      std::fprintf(stderr, "submit: cannot write %s\n", options.checkpoint.c_str());
      return 1;
    }
    std::fprintf(stderr, "submit: wrote %zu records to %s\n", records.size(),
                 options.checkpoint.c_str());
  }
  return 0;
}

// Differential-execution oracle: reference interpreter vs the machine under
// every CPU model x mitigation config. Exit 0 iff no divergence.
int RunDifftestCommand(const CliOptions& options) {
  DifftestOptions opts;
  opts.seed_begin = options.seed_begin;
  opts.seed_end = options.seed_end;
  opts.cpus = options.cpus;
  opts.jobs = options.jobs;
  opts.inject_alu_fault_after = options.inject_alu_fault;
  opts.fast = options.fast;
  opts.cross_validate = options.cross_validate;
  for (const std::string& name : options.configs) {
    DiffConfig config;
    if (!TryGetDiffConfigByName(name, &config)) {
      std::fprintf(stderr, "unknown difftest config: \"%s\"\nvalid names:\n", name.c_str());
      for (const DiffConfig& c : DefaultDiffConfigs()) {
        std::fprintf(stderr, "  %s\n", c.name.c_str());
      }
      return 2;
    }
    opts.configs.push_back(config);
  }

  // Replay mode: run one corpus reproducer instead of generating programs.
  if (!options.replay.empty()) {
    std::ifstream in(options.replay);
    if (!in) {
      std::fprintf(stderr, "difftest: cannot read %s\n", options.replay.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Program program;
    std::string error;
    if (!ParseCorpusProgram(text.str(), &program, &error)) {
      std::fprintf(stderr, "difftest: %s: %s\n", options.replay.c_str(), error.c_str());
      return 2;
    }
    if (options.arch_hashes) {
      EmitArchHashes(program, opts.cpus,
                     opts.configs.empty() ? DefaultDiffConfigs() : opts.configs);
      return 0;
    }
    const ReferenceResult ref = RunReference(program);
    if (!ref.ok) {
      std::printf("reference: %s\n", ref.error.c_str());
      return 1;
    }
    const std::vector<DiffConfig> configs =
        opts.configs.empty() ? DefaultDiffConfigs() : opts.configs;
    int divergences = 0;
    for (Uarch u : opts.cpus) {
      for (const DiffConfig& config : configs) {
        const ArchState got = RunMachineArch(program, GetCpuModel(u), config, 1'000'000,
                                             opts.inject_alu_fault_after);
        if (!(got == ref.state)) {
          std::printf("DIVERGENCE cpu=%s config=%s: %s\n", UarchName(u), config.name.c_str(),
                      DescribeArchDivergence(ref.state, got).c_str());
          divergences++;
        }
      }
    }
    std::printf("replay %s: %d divergences\n", options.replay.c_str(), divergences);
    return divergences == 0 ? 0 : 1;
  }

  const DifftestReport report = RunDifftest(opts);
  std::printf("%s", report.ToText().c_str());
  if (!options.corpus_out.empty()) {
    for (const Divergence& d : report.divergences) {
      if (d.shrunk.size() == 0) {
        continue;
      }
      std::string cpu_slug = d.cpu;
      for (char& c : cpu_slug) {
        if (c == ' ') c = '-';
      }
      std::ostringstream path;
      path << options.corpus_out << "/seed-" << d.seed << "-" << cpu_slug << "-" << d.config
           << ".difftest";
      std::ostringstream comment;
      comment << "seed=" << d.seed << " cpu=" << d.cpu << " config=" << d.config << "\n"
              << d.detail << "\n"
              << "repro: " << d.repro;
      std::ofstream out(path.str());
      out << SerializeCorpusProgram(d.shrunk, comment.str());
      std::fprintf(stderr, "difftest: wrote %s\n", path.str().c_str());
    }
  }
  return report.ok() ? 0 : 1;
}

// Per-mitigation cycle counters from the uarch event bus: one run per
// (cpu, workload) under the boot-param-adjusted default configuration,
// byte-stable JSON on stdout (golden-tested; no timing-environment fields).
int RunCounters(const CliOptions& options) {
  const std::vector<std::string> workloads =
      options.workloads.empty()
          ? std::vector<std::string>{"lebench:getpid", "lebench:context-switch",
                                     "octane:richards"}
          : options.workloads;

  std::vector<CounterBreakdown> rows;
  bool bad_boot_param = false;
  for (Uarch u : options.cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    MitigationConfig config = MitigationConfig::Defaults(cpu);
    for (const std::string& token : options.boot_params) {
      if (!ApplyBootParam(&config, cpu, token)) {
        // ApplyBootParam returns false for tokens it does not recognize (or
        // that this CPU cannot honour, e.g. spectre_v2=ibrs on Zen 1);
        // surface that instead of silently measuring the wrong config.
        std::fprintf(stderr,
                     "counters: boot parameter \"%s\" not applied on %s "
                     "(unrecognized or unsupported)\n",
                     token.c_str(), UarchName(u));
        bad_boot_param = true;
      }
    }
    for (const std::string& workload : workloads) {
      const size_t colon = workload.find(':');
      const std::string suite = workload.substr(0, colon);
      const std::string kernel =
          colon == std::string::npos ? std::string() : workload.substr(colon + 1);
      if (suite == "lebench" && Contains(LeBench::KernelNames(), kernel)) {
        rows.push_back(MeasureLeBenchCounters(cpu, config, kernel));
      } else if (suite == "octane" && Contains(Octane::KernelNames(), kernel)) {
        rows.push_back(MeasureOctaneCounters(cpu, JitConfig::AllOn(), config, kernel));
      } else {
        std::fprintf(stderr,
                     "counters: unknown workload \"%s\" (want lebench:<kernel> or "
                     "octane:<kernel>)\n",
                     workload.c_str());
        return 2;
      }
    }
  }
  if (options.strict_boot_params && bad_boot_param) {
    return 2;
  }
  std::printf("%s", RenderCountersJson(rows).c_str());
  return 0;
}

// The security x overhead frontier: attack-suite verdict matrix joined
// with the overhead basket, per-CPU Pareto ranking on stdout. All three
// output formats are byte-stable and job-count independent (the JSON is
// golden-tested).
int RunPareto(const CliOptions& options) {
  if (options.json && options.csv) {
    std::fprintf(stderr, "pareto: pick one of --json / --csv\n");
    return 2;
  }
  ParetoOptions pareto_options;
  pareto_options.cpus = options.cpus;
  pareto_options.trials = options.trials;
  pareto_options.jobs = options.jobs;
  pareto_options.base_seed = options.seed;
  const ParetoReport report = BuildParetoReport(pareto_options);
  if (options.json) {
    std::printf("%s", RenderParetoJson(report).c_str());
  } else if (options.csv) {
    std::printf("%s", RenderParetoCsv(report).c_str());
  } else {
    std::printf("%s", RenderParetoText(report).c_str());
  }
  return 0;
}

// Static gadget analysis + simulator cross-validation over the corpus.
int RunAnalyze(const CliOptions& options) {
  std::vector<CorpusReport> reports;
  for (Uarch u : options.cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    CorpusReport report;
    report.cpu_name = UarchName(u);
    for (const CorpusEntry& entry : BuildGadgetCorpus(cpu.predictor.rsb_depth)) {
      CorpusReportEntry e;
      e.name = entry.name;
      e.description = entry.description;
      e.analysis = Analyze(entry.program, cpu);
      e.xval = CrossValidate(entry, cpu, e.analysis);
      report.entries.push_back(std::move(e));
    }
    reports.push_back(std::move(report));
  }

  int false_negatives = 0;
  for (const CorpusReport& report : reports) {
    for (const CorpusReportEntry& e : report.entries) {
      false_negatives += e.xval.false_negatives;
    }
  }
  if (options.json) {
    std::printf("%s", RenderCorpusJsonMulti(reports).c_str());
  } else {
    for (const CorpusReport& report : reports) {
      std::printf("%s\n", RenderCorpusText(report).c_str());
    }
  }
  return false_negatives == 0 ? 0 : 1;
}

std::vector<const MitigationPass*> SelectPasses(const CliOptions& options) {
  if (options.passes.empty()) {
    return MitigationPasses();
  }
  std::vector<const MitigationPass*> selected;
  for (const std::string& name : options.passes) {
    const MitigationPass* pass = FindMitigationPassByName(name);
    if (pass == nullptr) {
      std::fprintf(stderr, "unknown pass: \"%s\"\nregistered passes:\n", name.c_str());
      for (const MitigationPass* p : MitigationPasses()) {
        std::fprintf(stderr, "  %-18s %s\n", p->name().c_str(), p->summary().c_str());
      }
      std::exit(2);
    }
    selected.push_back(pass);
  }
  return selected;
}

// Corpus mode: each pass over each gadget-corpus program on each CPU, with
// the fixpoint check and (where the reference interpreter supports the
// program) the relocation-aware equivalence oracle.
int RunHardenCorpus(const CliOptions& options,
                    const std::vector<const MitigationPass*>& passes) {
  std::vector<HardenReport> reports;
  for (Uarch u : options.cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    const std::vector<CorpusEntry> corpus = BuildGadgetCorpus(cpu.predictor.rsb_depth);
    for (const MitigationPass* pass : passes) {
      HardenReport report;
      report.cpu_name = UarchName(u);
      report.pass_name = pass->name();
      report.pass_summary = pass->summary();
      for (const CorpusEntry& entry : corpus) {
        const PassRunReport run = RunPassToFixpoint(*pass, entry.program, cpu);
        HardenEntry e;
        e.program = entry.name;
        e.sites = static_cast<int>(run.sites.size());
        e.instructions_added = run.inserted;
        e.findings_before = run.findings_before;
        e.findings_after = run.findings_after;
        e.fixpoint = run.fixpoint_ok();
        const EquivalenceReport eq =
            CheckRewriteEquivalence(entry.program, run.hardened, run.index_map);
        e.equivalence_checked = eq.checked;
        e.equivalent = eq.equivalent;
        if (eq.checked && !eq.equivalent) {
          e.note = eq.divergence;
        }
        report.entries.push_back(std::move(e));
      }
      reports.push_back(std::move(report));
    }
  }
  if (options.json) {
    std::printf("%s", RenderHardenJson(reports).c_str());
  } else {
    std::printf("%s", RenderHardenText(reports).c_str());
  }
  return HardenReportsOk(reports) ? 0 : 1;
}

// Fuzz mode (--seeds=A:B): every pass over the difftest generator corpus.
// Analysis and hardening run on one CPU (the first of --cpus, defaulting to
// Skylake Client — the most permissive vulnerability set, so every detector
// can fire); each rewrite must hit its fixpoint and prove architectural
// equivalence, with the hardened program additionally re-simulated on a
// machine panel to exercise the rewritten opcode mix under speculation.
int RunHardenFuzz(const CliOptions& options,
                  const std::vector<const MitigationPass*>& passes) {
  const CpuModel& cpu = options.cpus_given ? GetCpuModel(options.cpus.front())
                                           : GetCpuModelByName("Skylake Client");
  EquivalenceOptions eq_options;
  eq_options.cpus = {Uarch::kSkylakeClient, Uarch::kZen3};
  DiffConfig config_off, config_defaults;
  SPECBENCH_CHECK(TryGetDiffConfigByName("off", &config_off));
  SPECBENCH_CHECK(TryGetDiffConfigByName("defaults", &config_defaults));
  eq_options.configs = {config_off, config_defaults};

  struct PassTally {
    uint64_t programs = 0;
    uint64_t rewritten = 0;    // rewrites that actually changed the program
    uint64_t skipped = 0;      // original outside the reference subset
    uint64_t fixpoint_failures = 0;
    uint64_t equivalence_failures = 0;
    std::string first_failure;
  };
  std::vector<PassTally> tallies(passes.size());
  for (uint64_t seed = options.seed_begin; seed < options.seed_end; seed++) {
    const Program program = GenerateProgram(seed);
    for (size_t i = 0; i < passes.size(); i++) {
      const MitigationPass& pass = *passes[i];
      PassTally& tally = tallies[i];
      tally.programs++;
      const PassRunReport run = RunPassToFixpoint(pass, program, cpu);
      if (run.inserted != 0) {
        tally.rewritten++;
      }
      if (!run.fixpoint_ok()) {
        tally.fixpoint_failures++;
        if (tally.first_failure.empty()) {
          tally.first_failure = "seed " + std::to_string(seed) + ": fixpoint (" +
                                std::to_string(run.findings_after) + " residual after " +
                                std::to_string(run.iterations) + " round(s))";
        }
      }
      const EquivalenceReport eq =
          CheckRewriteEquivalence(program, run.hardened, run.index_map, eq_options);
      if (!eq.checked) {
        tally.skipped++;
      } else if (!eq.equivalent) {
        tally.equivalence_failures++;
        if (tally.first_failure.empty()) {
          tally.first_failure = "seed " + std::to_string(seed) + ": " + eq.divergence;
        }
      }
    }
  }

  uint64_t failures = 0;
  if (options.json) {
    std::string out = "[";
    for (size_t i = 0; i < passes.size(); i++) {
      const PassTally& t = tallies[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"pass\":\"%s\",\"programs\":%llu,\"rewritten\":%llu,"
                    "\"skipped\":%llu,\"fixpoint_failures\":%llu,"
                    "\"equivalence_failures\":%llu}",
                    i == 0 ? "" : ",", passes[i]->name().c_str(),
                    static_cast<unsigned long long>(t.programs),
                    static_cast<unsigned long long>(t.rewritten),
                    static_cast<unsigned long long>(t.skipped),
                    static_cast<unsigned long long>(t.fixpoint_failures),
                    static_cast<unsigned long long>(t.equivalence_failures));
      out += buf;
      failures += t.fixpoint_failures + t.equivalence_failures;
    }
    out += "]\n";
    std::printf("%s", out.c_str());
  } else {
    std::printf("harden fuzz: cpu=%s seeds=[%llu,%llu)\n", UarchName(cpu.uarch),
                static_cast<unsigned long long>(options.seed_begin),
                static_cast<unsigned long long>(options.seed_end));
    for (size_t i = 0; i < passes.size(); i++) {
      const PassTally& t = tallies[i];
      std::printf("%-18s programs=%-5llu rewritten=%-5llu skipped=%-3llu "
                  "fixpoint_failures=%llu equivalence_failures=%llu\n",
                  passes[i]->name().c_str(),
                  static_cast<unsigned long long>(t.programs),
                  static_cast<unsigned long long>(t.rewritten),
                  static_cast<unsigned long long>(t.skipped),
                  static_cast<unsigned long long>(t.fixpoint_failures),
                  static_cast<unsigned long long>(t.equivalence_failures));
      if (!t.first_failure.empty()) {
        std::printf("  first failure: %s\n", t.first_failure.c_str());
      }
      failures += t.fixpoint_failures + t.equivalence_failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunHarden(const CliOptions& options) {
  const std::vector<const MitigationPass*> passes = SelectPasses(options);
  if (options.seeds_given) {
    return RunHardenFuzz(options, passes);
  }
  return RunHardenCorpus(options, passes);
}

int RunAttackSuite(const CliOptions& options) {
  std::printf("%-16s %-12s %-10s %-10s\n", "CPU", "attack", "unmitigated", "mitigated");
  int bad = 0;
  for (Uarch u : options.cpus) {
    const CpuModel& cpu = GetCpuModel(u);
    struct Row {
      const char* name;
      AttackResult off;
      AttackResult on;
    };
    const Row rows[] = {
        {"spectre-v1", RunSpectreV1Attack(cpu, false), RunSpectreV1Attack(cpu, true)},
        {"spectre-v2", RunSpectreV2Attack(cpu, {}),
         RunSpectreV2Attack(cpu, {.generic_retpoline = true})},
        {"spectre-rsb", RunSpectreRsbAttack(cpu, false), RunSpectreRsbAttack(cpu, true)},
        {"meltdown", RunMeltdownAttack(cpu, false), RunMeltdownAttack(cpu, true)},
        {"mds", RunMdsAttack(cpu, false), RunMdsAttack(cpu, true)},
        {"ssb", RunSsbAttack(cpu, false), RunSsbAttack(cpu, true)},
        {"lazyfp", RunLazyFpAttack(cpu, false), RunLazyFpAttack(cpu, true)},
        {"l1tf", RunL1tfAttack(cpu, false), RunL1tfAttack(cpu, true)},
        {"v2-smt", RunSpectreV2SmtAttack(cpu, false), RunSpectreV2SmtAttack(cpu, true)},
    };
    for (const Row& row : rows) {
      std::printf("%-16s %-12s %-10s %-10s\n", UarchName(u), row.name,
                  row.off.leaked ? "LEAK" : "safe", row.on.leaked ? "LEAK" : "safe");
      bad += row.on.leaked ? 1 : 0;
    }
  }
  std::printf("\n%d leaks with mitigations enabled (expected 0).\n", bad);
  return bad == 0 ? 0 : 1;
}

void PrintUsage() {
  std::printf(
      "usage: spectrebench <command> [--fast] [--cpus=Name1,Name2]\n\n"
      "commands:\n"
      "  list         experiments and CPU models\n"
      "  table1       default mitigation matrix        table2  CPU inventory\n"
      "  table3       syscall/sysret/cr3 cycles        table4  verw cycles\n"
      "  table5       indirect branch variants         table6  IBPB cycles\n"
      "  table7       RSB stuffing cycles              table8  lfence cycles\n"
      "  tables9-10   the speculation probe matrix     sec622  eIBRS bimodality\n"
      "  fig2         LEBench attribution (per CPU)\n"
      "  fig3         Octane 2 attribution (per CPU)\n"
      "  fig5         SSBD on PARSEC (per CPU)\n"
      "  sec44        VM workloads                     sec45   PARSEC defaults\n"
      "  fig2-kernels per-kernel LEBench overhead drill-down\n"
      "  sweep        run experiment grids on the deterministic parallel\n"
      "               runner: [--grids=fig2,fig3,sec45,difftest] [--jobs=N]\n"
      "               [--seed=S] [--workloads=a,b] [--configs=c] [--csv]\n"
      "               [--quiet]; the difftest grid takes [--seeds=A:B]\n"
      "               [--fast]; JSON/CSV on stdout is byte-identical for\n"
      "               any --jobs and for --fast vs detailed;\n"
      "               [--checkpoint=FILE] journals each finished cell\n"
      "               (crash-safe, fsynced) and [--resume] restarts a killed\n"
      "               run from the journal; [--shard=i/N] runs slice i of N\n"
      "               (requires --checkpoint; combine the journals with merge)\n"
      "  merge        combine shard journals into the full-grid output,\n"
      "               byte-identical to the one-shot sweep:\n"
      "               --inputs=a.journal,b.journal,... [--csv]\n"
      "  serve        sweep-as-a-service on a Unix socket; client batches\n"
      "               share one thread pool: --socket=PATH [--jobs=N]\n"
      "               [--quiet] (protocol: src/runner/service.h;\n"
      "               docs/runner.md)\n"
      "  submit       client for serve: sends one sweep batch and writes the\n"
      "               returned records as a journal for merge: --socket=PATH\n"
      "               [sweep grid/filter flags] [--shard=i/N]\n"
      "               [--checkpoint=FILE (default stdout)] | --ping |\n"
      "               --shutdown\n"
      "  counters     per-mitigation cycle counters from the uarch event bus:\n"
      "               [--cpus=...] [--workloads=lebench:getpid,octane:richards]\n"
      "               [--boot-params=nopti,mds=off,...] [--strict-boot-params];\n"
      "               byte-stable JSON on stdout; tokens ApplyBootParam rejects\n"
      "               warn on stderr (exit non-zero under --strict-boot-params)\n"
      "  attacks      run the full attack ground-truth suite\n"
      "  pareto       security x overhead frontier: every attack spec against\n"
      "               every (CPU x mitigation config) cell plus the overhead\n"
      "               basket; per CPU ranks configs, marks the non-dominated\n"
      "               frontier, names the cheapest fully-protecting config vs\n"
      "               the most protected one, and attributes which knob blocks\n"
      "               each attack: [--json|--csv] [--jobs=N] [--trials=T]\n"
      "               [--seed=S] [--cpus=...]; output is byte-identical for\n"
      "               any --jobs (JSON is golden-tested)\n"
      "  analyze      static gadget analysis of the corpus, cross-validated\n"
      "               against the simulator [--json]\n"
      "  harden       mitigation-pass framework: rewrite programs with the\n"
      "               registered passes and verify each rewrite\n"
      "               (analyze->harden->analyze fixpoint + architectural\n"
      "               equivalence): [--passes=targeted-lfence,...] [--json]\n"
      "               [--cpus=...]; default runs the gadget corpus, with\n"
      "               --seeds=A:B runs the difftest generator corpus instead\n"
      "               and re-simulates every hardened program on a machine\n"
      "               panel; exit 0 iff every check passes\n"
      "  difftest     differential-execution oracle: random programs on the\n"
      "               reference interpreter vs the machine under every CPU x\n"
      "               mitigation config: [--seeds=A:B] [--cpus=...] \n"
      "               [--configs=off,defaults,ssbd,ibrs,nopcid,stibp]\n"
      "               [--jobs=N] [--corpus-out=DIR] [--replay=FILE]\n"
      "               [--inject-alu-fault=N]; output is byte-identical for\n"
      "               any --jobs; exit 0 iff architecturally equivalent;\n"
      "               --fast reuses pooled machines with sampled timing\n"
      "               (docs/perf.md); --fast --cross-validate re-runs every\n"
      "               cell on the detailed engine and demands agreement;\n"
      "               --replay=FILE --arch-hashes prints the architectural\n"
      "               end-state digests (the refactor-guard golden format)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  // Validate the command before touching any flags so `spectrebench bogus
  // --bogus` reports the actual problem.
  const CommandSpec* spec = FindCommandSpec(command);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    PrintUsage();
    return 2;
  }
  CliOptions options;
  for (int i = 2; i < argc; i++) {
    const std::string arg = argv[i];
    if (!FlagAllowed(*spec, arg)) {
      return RejectFlag(command, *spec, arg);
    }
    if (arg == "--fast") {
      options.fast = true;
    } else if (arg == "--cross-validate") {
      options.cross_validate = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg.rfind("--cpus=", 0) == 0) {
      options.cpus = ParseCpuList(arg.substr(7));
      options.cpus_given = true;
    } else if (arg.rfind("--grids=", 0) == 0) {
      options.grids = SplitCsv(arg.substr(8));
    } else if (arg.rfind("--workloads=", 0) == 0) {
      options.workloads = SplitCsv(arg.substr(12));
    } else if (arg.rfind("--configs=", 0) == 0) {
      options.configs = SplitCsv(arg.substr(10));
    } else if (arg.rfind("--boot-params=", 0) == 0) {
      options.boot_params = SplitCsv(arg.substr(14));
    } else if (arg == "--strict-boot-params") {
      options.strict_boot_params = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--trials=", 0) == 0) {
      options.trials = std::atoi(arg.c_str() + 9);
      if (options.trials < 1) {
        std::fprintf(stderr, "--trials=%s: want a positive repeat count\n", arg.c_str() + 9);
        return 2;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--seeds=", 0) == 0) {
      const std::string value = arg.substr(8);
      std::string error;
      if (!ParseSeedRange(value, &options.seed_begin, &options.seed_end, &error)) {
        std::fprintf(stderr, "--seeds=%s: %s\n", value.c_str(), error.c_str());
        return 2;
      }
      options.seeds_given = true;
    } else if (arg.rfind("--passes=", 0) == 0) {
      options.passes = SplitCsv(arg.substr(9));
    } else if (arg.rfind("--inject-alu-fault=", 0) == 0) {
      options.inject_alu_fault = std::strtoull(arg.c_str() + 19, nullptr, 10);
    } else if (arg.rfind("--corpus-out=", 0) == 0) {
      options.corpus_out = arg.substr(13);
    } else if (arg.rfind("--replay=", 0) == 0) {
      options.replay = arg.substr(9);
    } else if (arg == "--arch-hashes") {
      options.arch_hashes = true;
    } else if (arg.rfind("--shard=", 0) == 0) {
      const std::string value = arg.substr(8);
      std::string error;
      if (!ParseShardSpec(value, &options.shard, &error)) {
        std::fprintf(stderr, "--shard=%s: %s\n", value.c_str(), error.c_str());
        return 2;
      }
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      options.checkpoint = arg.substr(13);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg.rfind("--inputs=", 0) == 0) {
      options.inputs = SplitCsv(arg.substr(9));
    } else if (arg.rfind("--socket=", 0) == 0) {
      options.socket_path = arg.substr(9);
    } else if (arg == "--ping") {
      options.ping = true;
    } else if (arg == "--shutdown") {
      options.send_shutdown = true;
    } else {
      // Allowlisted but not handled above: a CommandSpec / parser mismatch.
      std::fprintf(stderr, "internal error: unhandled option %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.cross_validate && !options.fast) {
    std::fprintf(stderr, "--cross-validate requires --fast\n");
    return 2;
  }

  if (command == "list") {
    PrintUsage();
    std::printf("\nCPU models:\n");
    for (Uarch u : AllUarches()) {
      const CpuModel& cpu = GetCpuModel(u);
      std::printf("  %-16s %s %s\n", UarchName(u), VendorName(cpu.vendor),
                  cpu.model_name.c_str());
    }
    return 0;
  }
  if (command == "table1") {
    std::printf("%s\n", RenderTable1MitigationMatrix().c_str());
    return 0;
  }
  if (command == "table2") {
    std::printf("%s\n", RenderTable2CpuInfo().c_str());
    return 0;
  }
  if (command == "table3") {
    std::printf("%s\n", RenderTable3EntryExit().c_str());
    return 0;
  }
  if (command == "table4") {
    std::printf("%s\n", RenderTable4Verw().c_str());
    return 0;
  }
  if (command == "table5") {
    std::printf("%s\n", RenderTable5IndirectBranch().c_str());
    return 0;
  }
  if (command == "table6") {
    std::printf("%s\n", RenderTable6Ibpb().c_str());
    return 0;
  }
  if (command == "table7") {
    std::printf("%s\n", RenderTable7RsbStuff().c_str());
    return 0;
  }
  if (command == "table8") {
    std::printf("%s\n", RenderTable8Lfence().c_str());
    return 0;
  }
  if (command == "tables9-10") {
    std::printf("%s\n", RenderTables9And10().c_str());
    return 0;
  }
  if (command == "sec622") {
    std::printf("%s\n", RenderEibrsBimodal().c_str());
    return 0;
  }
  if (command == "fig2") {
    std::printf("%s\n",
                RenderFigure2(RunFigure2LeBench(SamplerFor(options), options.cpus)).c_str());
    return 0;
  }
  if (command == "fig3") {
    std::printf("%s\n",
                RenderFigure3(RunFigure3Octane(SamplerFor(options), options.cpus)).c_str());
    return 0;
  }
  if (command == "fig5") {
    std::printf("%s\n", RenderFigure5(RunFigure5Ssbd(options.cpus)).c_str());
    return 0;
  }
  if (command == "sec44") {
    std::printf("%s\n",
                RenderSection44(RunSection44Vm(SamplerFor(options), options.cpus)).c_str());
    return 0;
  }
  if (command == "sec45") {
    std::printf("%s\n",
                RenderSection45(RunSection45Parsec(SamplerFor(options), options.cpus)).c_str());
    return 0;
  }
  if (command == "fig2-kernels") {
    // Per-kernel LEBench drill-down: which operations carry the overhead.
    for (Uarch u : options.cpus) {
      const CpuModel& cpu = GetCpuModel(u);
      std::printf("%s: per-kernel overhead of the default mitigation set\n", UarchName(u));
      for (const std::string& name : LeBench::KernelNames()) {
        const double def = LeBench::RunKernel(name, cpu, MitigationConfig::Defaults(cpu), 1);
        const double off = LeBench::RunKernel(name, cpu, MitigationConfig::AllOff(), 2);
        std::printf("  %-16s %8.0f vs %8.0f cycles/op  (%+.1f%%)\n", name.c_str(), def, off,
                    (def / off - 1.0) * 100.0);
      }
      std::printf("\n");
    }
    return 0;
  }
  if (command == "sweep") {
    return RunSweep(options);
  }
  if (command == "merge") {
    return RunMerge(options);
  }
  if (command == "serve") {
    return RunServe(options);
  }
  if (command == "submit") {
    return RunSubmit(options);
  }
  if (command == "counters") {
    return RunCounters(options);
  }
  if (command == "attacks") {
    return RunAttackSuite(options);
  }
  if (command == "pareto") {
    return RunPareto(options);
  }
  if (command == "harden") {
    return RunHarden(options);
  }
  if (command == "analyze") {
    return RunAnalyze(options);
  }
  if (command == "difftest") {
    return RunDifftestCommand(options);
  }
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  PrintUsage();
  return 2;
}
