#!/usr/bin/env bash
# Regenerates every golden fixture under tests/golden/ in one deterministic
# step. Run it after an intentional model or format change (a new mitigation
# knob, a new attack spec, a renderer change), then review the diff: a
# changed byte means a changed verdict or a changed overhead, never noise.
#
#   tools/regen_goldens.sh [build-dir]
#
# Covers, in dependency order:
#   * tests/golden/corpus_trace_hashes.txt — architectural refactor guard
#     (the CLI's `difftest --replay --arch-hashes` emitter; this one should
#     only ever change when the ISA, the corpus, or the DiffConfig panel
#     changes — NOT when mitigation costs move)
#   * tests/golden/pareto.json            — the security x overhead frontier
#   * tests/golden/counters.json          — cause-attribution counter matrix
#   * tests/golden/analyze.json           — analyze-report fixture
#   * tests/golden/sweep.json / sweep.csv — sweep emitter fixtures
#
# Every generator is byte-deterministic for any --jobs, so the script runs
# them at full parallelism and the output is still reproducible.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if [[ ! -d "${build_dir}" ]]; then
  echo "regen_goldens: build directory ${build_dir} not found" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

cmake --build "${build_dir}" -j \
  --target spectrebench pareto_golden_test counters_golden_test \
           analyze_golden_test runner_test difftest_test

cd "${repo_root}"

echo "== arch hashes (refactor guard) =="
"${build_dir}/tools/spectrebench" difftest \
  --replay=tests/corpus/store-order-zen2.difftest --arch-hashes \
  > tests/golden/corpus_trace_hashes.txt

echo "== pareto.json =="
SPECBENCH_REGEN_GOLDEN=1 "${build_dir}/tests/pareto_golden_test" \
  --gtest_filter='ParetoGolden.JsonMatchesGoldenFileByteForByte'

echo "== counters.json =="
SPECBENCH_REGEN_GOLDEN=1 "${build_dir}/tests/counters_golden_test"

echo "== analyze.json =="
SPECBENCH_REGEN_GOLDEN=1 "${build_dir}/tests/analyze_golden_test"

echo "== sweep.json / sweep.csv =="
SPECBENCH_REGEN_GOLDEN=1 "${build_dir}/tests/runner_test" \
  --gtest_filter='SweepEmitters.*'

echo "== verify: everything agrees with the refreshed fixtures =="
"${build_dir}/tests/difftest_test" --gtest_filter='Corpus.ArchHashesMatchTheGoldenFile'
"${build_dir}/tests/pareto_golden_test"
"${build_dir}/tests/counters_golden_test"
"${build_dir}/tests/analyze_golden_test"
"${build_dir}/tests/runner_test" --gtest_filter='SweepEmitters.*'

echo "regen_goldens: done — review the diff under tests/golden/"
git -C "${repo_root}" --no-pager diff --stat -- tests/golden || true
